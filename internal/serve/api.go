package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/la"
	"repro/internal/scopf"
)

// errUnknownSystem distinguishes "no such system" (404) from malformed
// requests (400).
var errUnknownSystem = errors.New("unknown system (see GET /v1/systems)")

// SolveRequest is the body of POST /v1/solve. Exactly one of Scale and
// Factors selects the load instance; omitting both solves the base
// case (all factors 1.0).
type SolveRequest struct {
	// System names a loaded system ("case9", …); required.
	System string `json:"system"`
	// Scale applies one uniform load multiplier to every bus.
	Scale *float64 `json:"scale,omitempty"`
	// Factors gives a per-bus load multiplier (length = number of buses).
	Factors []float64 `json:"factors,omitempty"`
	// Cold forces the cold-start path even when a model is loaded.
	Cold bool `json:"cold,omitempty"`
}

// Timing reports the component wall-clock times of one solve in
// microseconds, mirroring the Figure 5 breakdown (prep = problem
// derivation, infer = model forward pass, solve = warm or cold
// interior-point iterations, restart = cold fallback after a failed
// warm start).
type Timing struct {
	PrepUS    int64 `json:"prep_us"`
	InferUS   int64 `json:"infer_us"`
	SolveUS   int64 `json:"solve_us"`
	RestartUS int64 `json:"restart_us"`
	TotalUS   int64 `json:"total_us"`
}

// SolveResponse is the body of a successful POST /v1/solve. Solution
// units match opf.Result: Va in radians, Vm in per unit, Pg in MW, Qg
// in MVAr (one entry per in-service generator).
type SolveResponse struct {
	System string `json:"system"`
	// Path is the pipeline the accepted solution came from: "warm"
	// (warm start converged), "warm_restart" (warm start failed, cold
	// fallback accepted) or "cold" (no model or Cold requested).
	Path string `json:"path"`
	// Converged reports the accepted solve; WarmConverged reports the
	// warm attempt before any restart (the paper's SR numerator).
	Converged     bool `json:"converged"`
	WarmConverged bool `json:"warm_converged"`
	ColdRestarted bool `json:"cold_restarted"`

	Iterations int       `json:"iterations"`
	Cost       float64   `json:"cost"`
	Va         []float64 `json:"va"`
	Vm         []float64 `json:"vm"`
	Pg         []float64 `json:"pg"`
	Qg         []float64 `json:"qg"`

	// ModelVersion identifies the replica set that served a warm request
	// (the lifecycle registry version when one is attached); empty on the
	// cold path. Every response carries exactly one version — a request
	// is never split across a hot swap.
	ModelVersion string `json:"model_version,omitempty"`
	// Canary marks a warm request routed to the canary candidate.
	Canary bool `json:"canary,omitempty"`

	Timing Timing `json:"timing"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SystemInfo is one entry of GET /v1/systems.
type SystemInfo struct {
	Name       string `json:"name"`
	Buses      int    `json:"buses"`
	Generators int    `json:"generators"`
	Branches   int    `json:"branches"`
	NLam       int    `json:"nlam"` // equality multipliers (#λ)
	NMu        int    `json:"nmu"`  // inequality multipliers (#µ)
	Model      bool   `json:"model"`
}

// SystemsResponse is the body of GET /v1/systems.
type SystemsResponse struct {
	Systems []SystemInfo `json:"systems"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string  `json:"status"`
	Systems int     `json:"systems"`
	UptimeS float64 `json:"uptime_s"`
}

// ScreenRequest is the body of POST /v1/screen: an N-1 contingency
// screening sweep over load draws × branch outages on one system.
// Load draws come either explicitly (Draws) or sampled uniformly in
// [1−Spread, 1+Spread] from Seed (NDraws); omitting both screens the
// base load point. Omitting Contingencies screens every single-branch
// outage that keeps the network connected.
type ScreenRequest struct {
	// System names a loaded system ("case9", …); required.
	System string `json:"system"`
	// Draws lists explicit per-bus load multipliers (each of length =
	// number of buses). Mutually exclusive with NDraws.
	Draws [][]float64 `json:"draws,omitempty"`
	// NDraws samples this many load draws from Seed/Spread.
	NDraws int `json:"n_draws,omitempty"`
	// Seed seeds the draw sampler (deterministic screening).
	Seed int64 `json:"seed,omitempty"`
	// Spread is the half-width of the sampled load band (default 0.1,
	// the paper's ±10 %).
	Spread float64 `json:"spread,omitempty"`
	// Contingencies lists branch indices to outage; nil means the full
	// connected N-1 set. An empty list screens only the intact topology.
	Contingencies []int `json:"contingencies,omitempty"`
	// GenContingencies lists generator indices (into the system's
	// generator table) to outage — the generator axis of the
	// contingency space. Each must name an in-service unit.
	GenContingencies []int `json:"gen_contingencies,omitempty"`
	// AllGenOutages screens every in-service generator's outage (the
	// full generator N-1 set); mutually exclusive with GenContingencies.
	AllGenOutages bool `json:"all_gen_outages,omitempty"`
	// Pairs lists explicit N-2 branch pairs to screen on top of the
	// single-outage contingencies. Pairs that island the network are
	// legal: the engine classifies them without solving.
	Pairs [][2]int `json:"pairs,omitempty"`
	// Policy supplies a trained warm/cold dispatch policy (weights and
	// threshold as produced by scopf.TrainPolicy, e.g. from
	// `scopf -policy -json`) applied per scenario during the sweep.
	Policy *scopf.Policy `json:"policy,omitempty"`
	// SkipIntact drops the no-outage scenario of each draw.
	SkipIntact bool `json:"skip_intact,omitempty"`
	// Cold forces cold-start screening even when a model is loaded.
	Cold bool `json:"cold,omitempty"`
	// Outcomes includes the per-scenario results in the response.
	Outcomes bool `json:"outcomes,omitempty"`
}

// ScreenClass reports one topology class of a screening run.
type ScreenClass struct {
	OutBranch  int    `json:"out_branch"`  // -1 = no branch outage
	OutBranch2 int    `json:"out_branch2"` // second branch of an N-2 pair, -1 = none
	OutGen     int    `json:"out_gen"`     // dropped generator, -1 = none
	Kind       string `json:"kind"`        // "intact", "branch", "pair", "gen" or "branch+gen"
	Scenarios  int    `json:"scenarios"`
	NMu        int    `json:"nmu"`       // inequality rows of the class layout
	WarmMode   string `json:"warm_mode"` // "exact", "projected" or "cold"
	Islanded   bool   `json:"islanded,omitempty"`
}

// ScreenOutcome is one scenario's result in a ScreenResponse.
type ScreenOutcome struct {
	Draw         int     `json:"draw"`
	OutBranch    int     `json:"out_branch"`
	OutBranch2   int     `json:"out_branch2"` // -1 = none
	OutGen       int     `json:"out_gen"`     // -1 = none
	Feasible     bool    `json:"feasible"`
	Cost         float64 `json:"cost"`
	Iterations   int     `json:"iterations"`
	Binding      int     `json:"binding"` // active inequality rows at the solution
	Warm         bool    `json:"warm"`
	Projected    bool    `json:"projected"`
	Islanded     bool    `json:"islanded,omitempty"`
	ColdByPolicy bool    `json:"cold_by_policy,omitempty"`
	Err          string  `json:"err,omitempty"`
}

// ScreenResponse is the body of a successful POST /v1/screen.
type ScreenResponse struct {
	System          string          `json:"system"`
	Scenarios       int             `json:"scenarios"`
	Classes         int             `json:"classes"` // prepared topology variants (structure reuse = Scenarios/Classes)
	Feasible        int             `json:"feasible"`
	WarmConverged   int             `json:"warm_converged"`
	Projected       int             `json:"projected"`
	Islanded        int             `json:"islanded"`    // scenarios classified as islanding, never solved
	PolicyCold      int             `json:"policy_cold"` // warm starts skipped by the dispatch policy
	Errors          int             `json:"errors"`
	MeanIterations  float64         `json:"mean_iterations"`
	WorstCost       float64         `json:"worst_cost"`
	WarmHitRate     float64         `json:"warm_hit_rate"`
	ElapsedUS       int64           `json:"elapsed_us"`
	ScenariosPerSec float64         `json:"scenarios_per_sec"`
	ClassStats      []ScreenClass   `json:"class_stats"`
	Outcomes        []ScreenOutcome `json:"outcomes,omitempty"`
}

// Screening bounds: enough for a full N-1 sweep on the largest paper
// system at a few dozen draws, small enough that one request cannot
// monopolize the server for minutes unnoticed.
const (
	maxScreenDraws     = 1024
	maxScreenScenarios = 8192
)

// validateScreen resolves a screening request into the scenario list
// (draw-major, intact topology first unless skipped) and the draw index
// of each scenario. Error text is safe for the client.
func (s *Server) validateScreen(req *ScreenRequest) (*systemState, []scopf.Scenario, []int, error) {
	if req.System == "" {
		return nil, nil, nil, fmt.Errorf("missing required field %q", "system")
	}
	st, ok := s.systems[req.System]
	if !ok {
		return nil, nil, nil, errUnknownSystem
	}
	nb := st.sys.Case.NB()

	if req.NDraws < 0 {
		return nil, nil, nil, fmt.Errorf("n_draws %d out of range (want a positive count)", req.NDraws)
	}
	if len(req.Draws) > 0 && req.NDraws > 0 {
		return nil, nil, nil, fmt.Errorf("fields %q and %q are mutually exclusive", "draws", "n_draws")
	}
	var draws []la.Vector
	switch {
	case len(req.Draws) > 0:
		if len(req.Draws) > maxScreenDraws {
			return nil, nil, nil, fmt.Errorf("%d draws exceed the limit of %d", len(req.Draws), maxScreenDraws)
		}
		for d, f := range req.Draws {
			if len(f) != nb {
				return nil, nil, nil, fmt.Errorf("draws[%d] has %d entries, system %s has %d buses", d, len(f), req.System, nb)
			}
			for i, v := range f {
				if !validFactor(v) {
					return nil, nil, nil, fmt.Errorf("draws[%d][%d] = %v out of range (want a positive finite multiplier ≤ %v)", d, i, v, maxFactor)
				}
			}
			draws = append(draws, la.Vector(f).Clone())
		}
	case req.NDraws > 0:
		if req.NDraws > maxScreenDraws {
			return nil, nil, nil, fmt.Errorf("n_draws %d exceeds the limit of %d", req.NDraws, maxScreenDraws)
		}
		spread := req.Spread
		if spread == 0 {
			spread = 0.1
		}
		if spread < 0 || spread >= 1 {
			return nil, nil, nil, fmt.Errorf("spread %v out of range (want 0 < spread < 1)", spread)
		}
		rng := rand.New(rand.NewSource(req.Seed))
		for d := 0; d < req.NDraws; d++ {
			f := make(la.Vector, nb)
			for i := range f {
				f[i] = 1 - spread + 2*spread*rng.Float64()
			}
			draws = append(draws, f)
		}
	default:
		if req.Spread != 0 {
			return nil, nil, nil, fmt.Errorf("field %q needs %q", "spread", "n_draws")
		}
		f := make(la.Vector, nb)
		for i := range f {
			f[i] = 1
		}
		draws = append(draws, f)
	}

	cons := req.Contingencies
	if cons == nil {
		cons = scopf.Contingencies(st.sys.Case)
	}
	nbr := len(st.sys.Case.Branches)
	for i, l := range cons {
		if l < 0 || l >= nbr {
			return nil, nil, nil, fmt.Errorf("contingencies[%d] = %d outside the %d branches of %s", i, l, nbr, req.System)
		}
	}
	gens := req.GenContingencies
	if req.AllGenOutages {
		if len(gens) > 0 {
			return nil, nil, nil, fmt.Errorf("fields %q and %q are mutually exclusive", "gen_contingencies", "all_gen_outages")
		}
		gens = scopf.GenContingencies(st.sys.Case)
	}
	ngen := len(st.sys.Case.Gens)
	for i, g := range gens {
		if g < 0 || g >= ngen {
			return nil, nil, nil, fmt.Errorf("gen_contingencies[%d] = %d outside the %d generators of %s", i, g, ngen, req.System)
		}
		if !st.sys.Case.Gens[g].Status {
			return nil, nil, nil, fmt.Errorf("gen_contingencies[%d]: generator %d of %s is out of service", i, g, req.System)
		}
	}
	for i, p := range req.Pairs {
		for _, l := range p {
			if l < 0 || l >= nbr {
				return nil, nil, nil, fmt.Errorf("pairs[%d] names branch %d outside the %d branches of %s", i, l, nbr, req.System)
			}
		}
	}
	perDraw := len(cons) + len(gens) + len(req.Pairs)
	if !req.SkipIntact {
		perDraw++
	}
	if perDraw == 0 {
		return nil, nil, nil, fmt.Errorf("nothing to screen: %q with an empty %q", "skip_intact", "contingencies")
	}
	if total := len(draws) * perDraw; total > maxScreenScenarios {
		return nil, nil, nil, fmt.Errorf("%d scenarios (%d draws × %d topologies) exceed the limit of %d", total, len(draws), perDraw, maxScreenScenarios)
	}

	scenarios := make([]scopf.Scenario, 0, len(draws)*perDraw)
	drawIdx := make([]int, 0, len(draws)*perDraw)
	for d, f := range draws {
		if !req.SkipIntact {
			scenarios = append(scenarios, scopf.Scenario{Factors: f, OutBranch: -1})
			drawIdx = append(drawIdx, d)
		}
		for _, l := range cons {
			scenarios = append(scenarios, scopf.Scenario{Factors: f, OutBranch: l})
			drawIdx = append(drawIdx, d)
		}
		for _, g := range gens {
			scenarios = append(scenarios, scopf.GenScenario(f, g))
			drawIdx = append(drawIdx, d)
		}
		for _, p := range req.Pairs {
			scenarios = append(scenarios, scopf.PairScenario(f, p[0], p[1]))
			drawIdx = append(drawIdx, d)
		}
	}
	return st, scenarios, drawIdx, nil
}

// validate checks a decoded request against the registered system and
// resolves the per-bus factor vector. The returned error text is safe
// to return to the client.
func (s *Server) validate(req *SolveRequest) (*systemState, []float64, error) {
	if req.System == "" {
		return nil, nil, fmt.Errorf("missing required field %q", "system")
	}
	st, ok := s.systems[req.System]
	if !ok {
		return nil, nil, errUnknownSystem
	}
	if req.Scale != nil && req.Factors != nil {
		return nil, nil, fmt.Errorf("fields %q and %q are mutually exclusive", "scale", "factors")
	}
	nb := st.sys.Case.NB()
	factors := make([]float64, nb)
	switch {
	case req.Scale != nil:
		if !validFactor(*req.Scale) {
			return nil, nil, fmt.Errorf("scale %v out of range (want a positive finite multiplier ≤ %v)", *req.Scale, maxFactor)
		}
		for i := range factors {
			factors[i] = *req.Scale
		}
	case req.Factors != nil:
		if len(req.Factors) != nb {
			return nil, nil, fmt.Errorf("factors has %d entries, system %s has %d buses", len(req.Factors), req.System, nb)
		}
		for i, f := range req.Factors {
			if !validFactor(f) {
				return nil, nil, fmt.Errorf("factors[%d] = %v out of range (want a positive finite multiplier ≤ %v)", i, f, maxFactor)
			}
		}
		copy(factors, req.Factors)
	default:
		for i := range factors {
			factors[i] = 1.0
		}
	}
	return st, factors, nil
}

// maxFactor bounds a load multiplier: generous enough for any stress
// sweep, tight enough to reject units mistakes (loads sent in MW).
const maxFactor = 100.0

func validFactor(f float64) bool {
	return f > 0 && !math.IsInf(f, 1) && !math.IsNaN(f) && f <= maxFactor
}

func usec(d time.Duration) int64 { return d.Microseconds() }
