package serve

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// errUnknownSystem distinguishes "no such system" (404) from malformed
// requests (400).
var errUnknownSystem = errors.New("unknown system (see GET /v1/systems)")

// SolveRequest is the body of POST /v1/solve. Exactly one of Scale and
// Factors selects the load instance; omitting both solves the base
// case (all factors 1.0).
type SolveRequest struct {
	// System names a loaded system ("case9", …); required.
	System string `json:"system"`
	// Scale applies one uniform load multiplier to every bus.
	Scale *float64 `json:"scale,omitempty"`
	// Factors gives a per-bus load multiplier (length = number of buses).
	Factors []float64 `json:"factors,omitempty"`
	// Cold forces the cold-start path even when a model is loaded.
	Cold bool `json:"cold,omitempty"`
}

// Timing reports the component wall-clock times of one solve in
// microseconds, mirroring the Figure 5 breakdown (prep = problem
// derivation, infer = model forward pass, solve = warm or cold
// interior-point iterations, restart = cold fallback after a failed
// warm start).
type Timing struct {
	PrepUS    int64 `json:"prep_us"`
	InferUS   int64 `json:"infer_us"`
	SolveUS   int64 `json:"solve_us"`
	RestartUS int64 `json:"restart_us"`
	TotalUS   int64 `json:"total_us"`
}

// SolveResponse is the body of a successful POST /v1/solve. Solution
// units match opf.Result: Va in radians, Vm in per unit, Pg in MW, Qg
// in MVAr (one entry per in-service generator).
type SolveResponse struct {
	System string `json:"system"`
	// Path is the pipeline the accepted solution came from: "warm"
	// (warm start converged), "warm_restart" (warm start failed, cold
	// fallback accepted) or "cold" (no model or Cold requested).
	Path string `json:"path"`
	// Converged reports the accepted solve; WarmConverged reports the
	// warm attempt before any restart (the paper's SR numerator).
	Converged     bool `json:"converged"`
	WarmConverged bool `json:"warm_converged"`
	ColdRestarted bool `json:"cold_restarted"`

	Iterations int       `json:"iterations"`
	Cost       float64   `json:"cost"`
	Va         []float64 `json:"va"`
	Vm         []float64 `json:"vm"`
	Pg         []float64 `json:"pg"`
	Qg         []float64 `json:"qg"`

	Timing Timing `json:"timing"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SystemInfo is one entry of GET /v1/systems.
type SystemInfo struct {
	Name       string `json:"name"`
	Buses      int    `json:"buses"`
	Generators int    `json:"generators"`
	Branches   int    `json:"branches"`
	NLam       int    `json:"nlam"` // equality multipliers (#λ)
	NMu        int    `json:"nmu"`  // inequality multipliers (#µ)
	Model      bool   `json:"model"`
}

// SystemsResponse is the body of GET /v1/systems.
type SystemsResponse struct {
	Systems []SystemInfo `json:"systems"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string  `json:"status"`
	Systems int     `json:"systems"`
	UptimeS float64 `json:"uptime_s"`
}

// validate checks a decoded request against the registered system and
// resolves the per-bus factor vector. The returned error text is safe
// to return to the client.
func (s *Server) validate(req *SolveRequest) (*systemState, []float64, error) {
	if req.System == "" {
		return nil, nil, fmt.Errorf("missing required field %q", "system")
	}
	st, ok := s.systems[req.System]
	if !ok {
		return nil, nil, errUnknownSystem
	}
	if req.Scale != nil && req.Factors != nil {
		return nil, nil, fmt.Errorf("fields %q and %q are mutually exclusive", "scale", "factors")
	}
	nb := st.sys.Case.NB()
	factors := make([]float64, nb)
	switch {
	case req.Scale != nil:
		if !validFactor(*req.Scale) {
			return nil, nil, fmt.Errorf("scale %v out of range (want a positive finite multiplier ≤ %v)", *req.Scale, maxFactor)
		}
		for i := range factors {
			factors[i] = *req.Scale
		}
	case req.Factors != nil:
		if len(req.Factors) != nb {
			return nil, nil, fmt.Errorf("factors has %d entries, system %s has %d buses", len(req.Factors), req.System, nb)
		}
		for i, f := range req.Factors {
			if !validFactor(f) {
				return nil, nil, fmt.Errorf("factors[%d] = %v out of range (want a positive finite multiplier ≤ %v)", i, f, maxFactor)
			}
		}
		copy(factors, req.Factors)
	default:
		for i := range factors {
			factors[i] = 1.0
		}
	}
	return st, factors, nil
}

// maxFactor bounds a load multiplier: generous enough for any stress
// sweep, tight enough to reject units mistakes (loads sent in MW).
const maxFactor = 100.0

func validFactor(f float64) bool {
	return f > 0 && !math.IsInf(f, 1) && !math.IsNaN(f) && f <= maxFactor
}

func usec(d time.Duration) int64 { return d.Microseconds() }
