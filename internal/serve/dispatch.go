package serve

import (
	"time"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/opf"
)

// job is one queued solve request: the target system, the resolved
// per-bus factors and a buffered channel the handler waits on.
type job struct {
	st      *systemState
	cold    bool
	factors []float64
	resp    chan *SolveResponse
}

// dispatch is the micro-batching loop: it blocks for the first queued
// request, keeps collecting until the batch window closes or MaxBatch
// is reached, and fans the batch out across the internal/batch worker
// pool. One batch runs at a time; requests arriving meanwhile wait in
// the bounded queue (the handler sheds load past QueueDepth).
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runBatch(s.collect(j))
		case <-s.done:
			s.drain()
			return
		}
	}
}

// collect gathers at most MaxBatch jobs, waiting up to BatchWindow
// after the first for stragglers to coalesce. A negative window takes
// only what is already queued, without waiting.
func (s *Server) collect(first *job) []*job {
	jobs := []*job{first}
	if s.cfg.MaxBatch == 1 {
		return jobs
	}
	if s.cfg.BatchWindow < 0 {
		for len(jobs) < s.cfg.MaxBatch {
			select {
			case j := <-s.queue:
				jobs = append(jobs, j)
			default:
				return jobs
			}
		}
		return jobs
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(jobs) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			jobs = append(jobs, j)
		case <-timer.C:
			return jobs
		}
	}
	return jobs
}

// drain completes whatever is still queued at shutdown, so no handler
// is left waiting; it must not block on an empty queue.
func (s *Server) drain() {
	for {
		select {
		case j := <-s.queue:
			s.runBatch(s.collect(j))
		default:
			return
		}
	}
}

// runBatch executes one micro-batch on the worker pool. Requests are
// independent solves, so neither task order nor the per-task RNG
// matters — only the pool's panic propagation and bounded parallelism.
func (s *Server) runBatch(jobs []*job) {
	s.met.observeBatchSize(len(jobs))
	_ = batch.Run(len(jobs), batch.Options{Workers: s.cfg.Workers}, func(t *batch.Task) error {
		j := jobs[t.Index]
		j.resp <- s.execute(j)
		return nil
	})
}

// execute runs one request through the exact offline code path:
// core.System.SolveWarm for the warm pipeline (predict → warm solve →
// cold-restart fallback) or a plain cold (*opf.OPF).Solve. Solutions
// are therefore bit-identical to cmd/pgsim / cmd/smartpgsim for the
// same system, factors and model.
func (s *Server) execute(j *job) *SolveResponse {
	t0 := time.Now()
	resp := &SolveResponse{System: j.st.sys.Name}
	var state solveState
	var input []float64
	rs := j.st.replicas()
	if rs != nil && !j.cold {
		// The replica set is loaded once per request: the request borrows
		// a replica from that set and returns it to the same set, so a
		// concurrent hot swap can neither drop this request nor mix model
		// versions within it. During a canary window the deterministic
		// splitter routes the request to the candidate's set instead.
		set := rs
		cr := j.st.canary.Load()
		if cr != nil && cr.ctl.Route() {
			set = cr.set
			resp.Canary = true
		}
		p := <-set.pool
		// One derivation serves both the model input and the solver: the
		// Perturb'd instance's case is the scaled clone InstanceInput
		// would otherwise rebuild.
		inst := j.st.sys.OPF.Perturb(j.factors)
		input = dataset.InputVector(inst.Case)
		w := j.st.sys.SolveWarmInstance(p, inst, input)
		set.pool <- p
		r := w.Result
		resp.Path = "warm"
		resp.WarmConverged = w.Converged
		if !w.Converged {
			resp.Path = "warm_restart"
			resp.ColdRestarted = true
		}
		resp.Converged = r.Converged
		resp.Iterations = w.Iterations
		resp.Cost = w.Cost
		resp.Va, resp.Vm, resp.Pg, resp.Qg = r.Va, r.Vm, r.Pg, r.Qg
		resp.ModelVersion = set.version
		state = solveState{x: r.X, lam: r.Lam, mu: r.Mu, z: r.Z}
		resp.Timing = Timing{
			PrepUS:    usec(w.PrepTime),
			InferUS:   usec(w.InferTime),
			SolveUS:   usec(w.WarmTime),
			RestartUS: usec(w.RestartTime),
		}
		if cr != nil {
			cr.ctl.Observe(resp.Canary, w.Converged, w.Iterations)
			s.met.recordCanarySolve(j.st.sys.Name, resp.Canary)
			s.maybeFinishCanary(j.st, cr)
		}
	} else {
		inst := j.st.sys.OPF.Perturb(j.factors)
		if j.st.lc != nil {
			input = dataset.InputVector(inst.Case)
		}
		r, _ := inst.Solve(nil, opf.Options{}) // a solver error reports as Converged=false
		resp.Path = "cold"
		resp.Converged = r.Converged
		resp.Iterations = r.Iterations
		resp.Cost = r.Cost
		resp.Va, resp.Vm, resp.Pg, resp.Qg = r.Va, r.Vm, r.Pg, r.Qg
		state = solveState{x: r.X, lam: r.Lam, mu: r.Mu, z: r.Z}
		resp.Timing = Timing{PrepUS: usec(r.PrepTime), SolveUS: usec(r.SolveTime)}
	}
	s.lifecycleObserve(j.st, j.factors, input, resp, state)
	total := time.Since(t0)
	resp.Timing.TotalUS = usec(total)
	s.met.recordSolve(resp, total)
	return resp
}
