package core

import (
	"fmt"
	"time"

	"repro/internal/casegen"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// System bundles a power network with its prepared OPF instance.
type System struct {
	Name string
	Case *grid.Case
	OPF  *opf.OPF
}

// LoadSystem resolves one of the paper's test systems by name
// ("case5" … "case300").
func LoadSystem(name string) (*System, error) {
	c, err := casegen.Paper(name)
	if err != nil {
		return nil, err
	}
	return &System{Name: name, Case: c, OPF: opf.Prepare(c)}, nil
}

// LoadSystems resolves several test systems concurrently on the batch
// worker pool (synthesizing the Table II profiles is the expensive
// part), in input order.
func LoadSystems(names []string) ([]*System, error) {
	cases, err := casegen.Systems(names, 0)
	if err != nil {
		return nil, err
	}
	out := make([]*System, len(cases))
	for i, c := range cases {
		out[i] = &System{Name: names[i], Case: c, OPF: opf.Prepare(c)}
	}
	return out, nil
}

// MustLoadSystem panics on failure (the paper systems are known-good).
func MustLoadSystem(name string) *System {
	s, err := LoadSystem(name)
	if err != nil {
		panic(err)
	}
	return s
}

// GenerateData draws n ±10 % load samples and solves them to optimality
// (the offline phase's training-data collection).
func (s *System) GenerateData(n int, seed int64) (*dataset.Set, error) {
	return dataset.Generate(s.Case, dataset.DefaultPreparer, dataset.Options{N: n, Seed: seed})
}

// instanceOPF derives the OPF of one load sample from the system's
// prepared instance — the Ybus and constraint structure are
// load-invariant, so they are shared, not rebuilt, across every
// perturbation of the base grid. The instance's PrepTime reports the
// derivation cost (clone+scale+rebind), which is the real per-problem
// construction work under structure sharing; see DESIGN.md §3.
func (s *System) instanceOPF(factors []float64) *opf.OPF {
	return s.OPF.Perturb(factors)
}

// modelPool hands out model replicas to concurrent workers: Predict
// caches activations on the model, so each in-flight inference needs its
// own clone. Replicas are interchangeable (identical weights), which
// keeps pooled results bit-identical to sequential ones. The pool is
// sized min(workers, tasks) — never more clones than can be in flight.
type modelPool struct{ ch chan *mtl.Model }

func newModelPool(m *mtl.Model, workers, tasks int) *modelPool {
	n := workers
	if tasks < n {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	p := &modelPool{ch: make(chan *mtl.Model, n)}
	p.ch <- m // the original counts as one replica
	for i := 1; i < n; i++ {
		p.ch <- m.Clone()
	}
	return p
}

func (p *modelPool) get() *mtl.Model  { return <-p.ch }
func (p *modelPool) put(m *mtl.Model) { p.ch <- m }

// TrainModel runs the offline training phase for a variant on the given
// training set.
func (s *System) TrainModel(variant mtl.Variant, train *dataset.Set, epochs int, seed int64, logf func(string, ...any)) (*mtl.Model, error) {
	cfg := mtl.Config{Variant: variant, Seed: seed}
	switch variant {
	case mtl.VariantMTL:
		cfg.Hierarchy = true
		cfg.DetachPeriod = 4
	case mtl.VariantSmartPGSim:
		cfg.Hierarchy = true
		cfg.DetachPeriod = 4
		cfg.Physics = mtl.DefaultPhysics()
	}
	m := mtl.New(s.OPF.Lay, cfg)
	var phys *mtl.Physics
	if cfg.Physics != (mtl.PhysicsWeights{}) {
		phys = mtl.NewPhysics(s.OPF, dataset.InputVector(s.Case))
	}
	// Small training sets (tests, quick runs) need smaller batches to get
	// enough optimizer steps per epoch.
	bs := 32
	if n := len(train.Samples); n < 8*bs {
		bs = n/8 + 1
	}
	tc := mtl.TrainConfig{Epochs: epochs, BatchSize: bs, Seed: seed, Logf: logf}
	if _, err := mtl.Train(m, phys, train, tc); err != nil {
		return nil, fmt.Errorf("core: training %s on %s: %w", variant, s.Name, err)
	}
	return m, nil
}

// SolveWarm runs the online phase for one instance: predict a warm start,
// solve, and fall back to a cold restart on failure (guaranteeing
// convergence as in the paper). It reports the component timings of
// Figure 5.
type WarmOutcome struct {
	Converged   bool // warm-start attempt converged (before restart)
	Iterations  int  // iterations of the successful solve
	InferTime   time.Duration
	WarmTime    time.Duration // solver time of the warm attempt
	RestartTime time.Duration // cold fallback time (zero if not needed)
	PrepTime    time.Duration
	Cost        float64
	Result      *opf.Result
}

// SolveWarm executes predict→warm-solve→(fallback restart).
func (s *System) SolveWarm(m *mtl.Model, factors []float64, input []float64) *WarmOutcome {
	o := s.instanceOPF(factors)
	t0 := time.Now()
	start := m.Predict(input)
	infer := time.Since(t0)
	r, err := o.Solve(start, opf.Options{})
	out := &WarmOutcome{
		Converged:  err == nil && r.Converged,
		InferTime:  infer,
		WarmTime:   r.SolveTime,
		PrepTime:   r.PrepTime,
		Iterations: r.Iterations,
		Cost:       r.Cost,
		Result:     r,
	}
	if !out.Converged {
		// Paper: restart from the default initial point.
		rc, err2 := o.Solve(nil, opf.Options{})
		out.RestartTime = rc.SolveTime
		if err2 == nil && rc.Converged {
			out.Iterations = rc.Iterations
			out.Cost = rc.Cost
			out.Result = rc
		}
	}
	return out
}
