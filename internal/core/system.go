package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/casegen"
	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/opf"
)

// System bundles a power network with its prepared OPF instance.
type System struct {
	Name string
	Case *grid.Case
	OPF  *opf.OPF
}

// LoadSystem resolves one of the paper's test systems by name
// ("case5" … "case300").
func LoadSystem(name string) (*System, error) {
	c, err := casegen.Paper(name)
	if err != nil {
		return nil, err
	}
	return &System{Name: name, Case: c, OPF: opf.Prepare(c)}, nil
}

// LoadSystems resolves several test systems concurrently on the batch
// worker pool (synthesizing the Table II profiles is the expensive
// part), in input order.
func LoadSystems(names []string) ([]*System, error) {
	cases, err := casegen.Systems(names, 0)
	if err != nil {
		return nil, err
	}
	out := make([]*System, len(cases))
	for i, c := range cases {
		out[i] = &System{Name: names[i], Case: c, OPF: opf.Prepare(c)}
	}
	return out, nil
}

// MustLoadSystem panics on failure (the paper systems are known-good).
func MustLoadSystem(name string) *System {
	s, err := LoadSystem(name)
	if err != nil {
		panic(err)
	}
	return s
}

// GenerateData draws n ±10 % load samples and solves them to optimality
// (the offline phase's training-data collection).
func (s *System) GenerateData(n int, seed int64) (*dataset.Set, error) {
	return dataset.Generate(s.Case, dataset.DefaultPreparer, dataset.Options{N: n, Seed: seed})
}

// instanceOPF derives the OPF of one load sample from the system's
// prepared instance — the Ybus and constraint structure are
// load-invariant, so they are shared, not rebuilt, across every
// perturbation of the base grid. The instance's PrepTime reports the
// derivation cost (clone+scale+rebind), which is the real per-problem
// construction work under structure sharing; see DESIGN.md §3.
func (s *System) instanceOPF(factors []float64) *opf.OPF {
	return s.OPF.Perturb(factors)
}

// InstanceInput computes the model input [Pd; Qd] of the load instance
// defined by factors — the same clone→scale→pack sequence that
// dataset.Generate stores as Sample.Input, so a serving-time prediction
// sees bit-identical inputs to the offline pipeline.
func (s *System) InstanceInput(factors []float64) la.Vector {
	cc := s.Case.Clone()
	cc.ScaleLoads(factors)
	return dataset.InputVector(cc)
}

// modelPool hands out model replicas to concurrent workers: Predict
// caches activations on the model, so each in-flight inference needs its
// own clone. Replicas are interchangeable (identical weights), which
// keeps pooled results bit-identical to sequential ones. The pool is
// sized min(workers, tasks) — never more clones than can be in flight.
type modelPool struct{ ch chan *mtl.Model }

func newModelPool(m *mtl.Model, workers, tasks int) *modelPool {
	n := workers
	if tasks < n {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	p := &modelPool{ch: make(chan *mtl.Model, n)}
	m.Warmup() // float32 serving caches built at pool setup, not in timed inference
	p.ch <- m  // the original counts as one replica
	for i := 1; i < n; i++ {
		c := m.Clone()
		c.Warmup()
		p.ch <- c
	}
	return p
}

func (p *modelPool) get() *mtl.Model  { return <-p.ch }
func (p *modelPool) put(m *mtl.Model) { p.ch <- m }

// TrainingDefaults returns the offline-phase sizes that keep dataset
// generation and training tractable for a system of nb buses: the
// number of ±10 % load draws to solve and the training epochs. Small
// systems keep the repository's hundreds-of-samples regime; at paper
// scale both shrink roughly inversely with the bus count — the
// per-draw cold solve grows superlinearly (case300 ≈ 1 s per draw vs
// case9 ≈ 1 ms), so even with the batch engine fanning draws across
// all cores, case300 lands at 160 draws / 80 epochs (minutes, not
// hours; the paper's offline phase uses 10,000 draws on a cluster).
// The cmd/traingen -n, cmd/train -epochs and cmd/scopf -epochs flags
// default to these via their 0 values; explicit flags override.
func TrainingDefaults(nb int) (draws, epochs int) {
	draws = clampInt(48000/nb, 150, 600)
	epochs = clampInt(24000/nb, 80, 300)
	return draws, epochs
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ModelConfig returns the model configuration the offline phase uses
// for a variant. TrainModel builds its models with it, and loaders of
// cmd/train snapshots (LoadModel, cmd/pgsimd) must construct the same
// configuration for the weights to land in identically shaped tensors.
func ModelConfig(variant mtl.Variant, seed int64) mtl.Config {
	cfg := mtl.Config{Variant: variant, Seed: seed}
	switch variant {
	case mtl.VariantMTL:
		cfg.Hierarchy = true
		cfg.DetachPeriod = 4
	case mtl.VariantSmartPGSim:
		cfg.Hierarchy = true
		cfg.DetachPeriod = 4
		cfg.Physics = mtl.DefaultPhysics()
	}
	return cfg
}

// LoadModel restores a model snapshot written by (*mtl.Model).Save (the
// cmd/train output format) into a model configured for this system and
// variant.
func (s *System) LoadModel(variant mtl.Variant, r io.Reader) (*mtl.Model, error) {
	m := mtl.New(s.OPF.Lay, ModelConfig(variant, 0))
	if err := m.Load(r); err != nil {
		return nil, fmt.Errorf("core: loading %s model for %s: %w", variant, s.Name, err)
	}
	return m, nil
}

// TrainModel runs the offline training phase for a variant on the given
// training set.
func (s *System) TrainModel(variant mtl.Variant, train *dataset.Set, epochs int, seed int64, logf func(string, ...any)) (*mtl.Model, error) {
	cfg := ModelConfig(variant, seed)
	m := mtl.New(s.OPF.Lay, cfg)
	var phys *mtl.Physics
	if cfg.Physics != (mtl.PhysicsWeights{}) {
		phys = mtl.NewPhysics(s.OPF, dataset.InputVector(s.Case))
	}
	// Small training sets (tests, quick runs) need smaller batches to get
	// enough optimizer steps per epoch.
	bs := 32
	if n := len(train.Samples); n < 8*bs {
		bs = n/8 + 1
	}
	tc := mtl.TrainConfig{Epochs: epochs, BatchSize: bs, Seed: seed, Logf: logf}
	if _, err := mtl.Train(m, phys, train, tc); err != nil {
		return nil, fmt.Errorf("core: training %s on %s: %w", variant, s.Name, err)
	}
	return m, nil
}

// RetrainOptions configures a served-traffic retraining run. The zero
// value is usable: epochs default through TrainingDefaults for the
// system size, the seed defaults to 1.
type RetrainOptions struct {
	// Epochs is the training epoch count; 0 derives it from the system
	// size via TrainingDefaults.
	Epochs int
	// Seed seeds weight initialization and batch shuffling; 0 means 1.
	Seed int64
	// Logf, when non-nil, receives training progress lines.
	Logf func(string, ...any)
}

// minRetrainSamples is the smallest captured corpus worth retraining
// on: below this the optimizer sees too few batches per epoch for the
// heads to move off initialization.
const minRetrainSamples = 16

// Retrain is the retrain-from-captured-pairs entry point of the online
// model lifecycle (DESIGN.md §13): it runs the exact offline training
// path (TrainModel) on a dataset assembled from served-traffic capture
// records instead of synthetic load draws. The set must belong to this
// system (same bus count) and carry at least minRetrainSamples
// converged pairs; epoch defaults follow TrainingDefaults so a capture
// window retrains in the same budget as a bootstrap run.
func (s *System) Retrain(variant mtl.Variant, set *dataset.Set, opt RetrainOptions) (*mtl.Model, error) {
	if set == nil || len(set.Samples) == 0 {
		return nil, fmt.Errorf("core: retrain %s: empty capture set", s.Name)
	}
	if set.NB != s.Case.NB() {
		return nil, fmt.Errorf("core: retrain %s: capture set has %d buses, system has %d", s.Name, set.NB, s.Case.NB())
	}
	if len(set.Samples) < minRetrainSamples {
		return nil, fmt.Errorf("core: retrain %s: %d captured pairs, want at least %d", s.Name, len(set.Samples), minRetrainSamples)
	}
	epochs := opt.Epochs
	if epochs == 0 {
		_, epochs = TrainingDefaults(s.Case.NB())
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	return s.TrainModel(variant, set, epochs, seed, opt.Logf)
}

// Predictor produces a warm-start point from a model input [Pd; Qd].
// *mtl.Model is the production implementation; the serving layer and
// tests substitute stubs to force specific warm-start behaviour. A
// Predictor is not required to be safe for concurrent use (model
// forward passes cache activations), so concurrent callers hand each
// worker its own instance — see mtl.Model.Clone.
type Predictor interface {
	Predict(input la.Vector) *opf.Start
}

// WarmOutcome reports one online-phase solve: whether the warm-start
// attempt converged (before any restart), the accepted solution, and
// the component timings of Figure 5.
type WarmOutcome struct {
	Converged   bool // warm-start attempt converged (before restart)
	Iterations  int  // iterations of the successful solve
	InferTime   time.Duration
	WarmTime    time.Duration // solver time of the warm attempt
	RestartTime time.Duration // cold fallback time (zero if not needed)
	PrepTime    time.Duration
	Cost        float64
	Result      *opf.Result
}

// SolveWarm executes predict→warm-solve→(fallback restart).
func (s *System) SolveWarm(m Predictor, factors []float64, input []float64) *WarmOutcome {
	return s.SolveWarmInstance(m, s.instanceOPF(factors), input)
}

// SolveWarmInstance is SolveWarm on an already derived load instance.
// The serving path uses it to derive each request's instance exactly
// once — the instance's Case provides the model input and the solver's
// problem — instead of cloning and scaling the base case twice.
func (s *System) SolveWarmInstance(m Predictor, o *opf.OPF, input []float64) *WarmOutcome {
	t0 := time.Now()
	start := m.Predict(input)
	infer := time.Since(t0)
	r, err := o.Solve(start, opf.Options{})
	out := &WarmOutcome{
		Converged:  err == nil && r.Converged,
		InferTime:  infer,
		WarmTime:   r.SolveTime,
		PrepTime:   r.PrepTime,
		Iterations: r.Iterations,
		Cost:       r.Cost,
		Result:     r,
	}
	if !out.Converged {
		// Paper: restart from the default initial point.
		rc, err2 := o.Solve(nil, opf.Options{})
		out.RestartTime = rc.SolveTime
		if err2 == nil && rc.Converged {
			out.Iterations = rc.Iterations
			out.Cost = rc.Cost
			out.Result = rc
		}
	}
	return out
}
