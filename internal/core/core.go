// Package core is the Smart-PGSim framework: the offline phase (dataset
// generation, sensitivity study, multitask-model training with physics
// constraints) and the online phase (MTL warm-start prediction feeding
// the MIPS interior-point solver, with cold restart as the 100 %-success
// fallback). It also hosts the experiment drivers that regenerate every
// table and figure of the paper — see DESIGN.md for the index.
//
// The heavy sweeps (Evaluate, SensitivityStudy, PredictionAccuracy,
// ConvergenceStudy) fan their per-problem solves out across the
// internal/batch worker pool. Each perturbed problem instance is derived
// from the system's prepared OPF via Rebind, sharing the assembled Ybus
// and constraint structure across all load perturbations, and model
// inference runs on per-worker replicas (model forward passes cache
// activations, so a replica may serve only one in-flight prediction).
// All aggregates except wall-clock timings are bit-identical to a
// sequential run under a fixed seed.
//
// The online phase is also exposed as a long-running service: the
// internal/serve package (behind cmd/pgsimd) drives System.SolveWarm
// per HTTP request, with Predictor as the warm-start seam and
// InstanceInput reproducing the offline pipeline's model inputs bit for
// bit.
package core
