package core
