package core

import (
	"fmt"
	"io"
)

// TableIIRow summarizes one test-system configuration (Table II).
type TableIIRow struct {
	System                string
	Buses, Gens, Branches int
	NLam, NMu             int
}

// TableII collects the configuration counts of the given systems.
func TableII(systems []*System) []TableIIRow {
	rows := make([]TableIIRow, 0, len(systems))
	for _, s := range systems {
		rows = append(rows, TableIIRow{
			System:   s.Name,
			Buses:    s.Case.NB(),
			Gens:     s.Case.NG(),
			Branches: s.Case.NL(),
			NLam:     s.OPF.Lay.NEq,
			NMu:      s.OPF.Lay.NIq,
		})
	}
	return rows
}

// PrintTableII renders the configuration table.
func PrintTableII(w io.Writer, rows []TableIIRow) {
	fmt.Fprintln(w, "Table II — test-system configurations")
	fmt.Fprintf(w, "%-10s %8s %8s %10s %8s %8s\n", "system", "buses", "gens", "branches", "#lambda", "#mu(Z)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %10d %8d %8d\n", r.System, r.Buses, r.Gens, r.Branches, r.NLam, r.NMu)
	}
}
