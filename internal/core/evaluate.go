package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/mtl"
	"repro/internal/opf"
	"repro/internal/stats"
)

// Breakdown aggregates the runtime components of Figure 5 across an
// evaluation run (all values are totals).
type Breakdown struct {
	Pre     time.Duration // problem construction (both pipelines)
	Newton  time.Duration // interior-point iterations
	MTL     time.Duration // model inference (Smart-PGSim only)
	Restart time.Duration // cold fallbacks after failed warm starts
}

// EvalResult is one system row of Figures 4 and 5.
type EvalResult struct {
	System    string
	NProblems int

	// MIPS baseline.
	TimeMIPS time.Duration // total cold-start solve time
	IterMIPS float64       // mean iterations

	// Smart-PGSim online pipeline.
	TimeSmart time.Duration // total end-to-end time (inference+solve+restarts)
	IterSmart float64       // mean iterations of the accepted solves
	SR        float64       // success rate before restart (Fig 4c)
	SU        float64       // Eqn 10 speedup

	BreakMIPS  Breakdown
	BreakSmart Breakdown

	// CostDelta is the mean |1 − cost_smart/cost_mips| over problems —
	// the "same solution" check (≈0).
	CostDelta float64
}

// Evaluate runs the paper's main comparison (Fig 4a-c, Fig 5) for one
// system: each validation sample is solved cold (MIPS) and through the
// Smart-PGSim online pipeline (predict → warm solve → restart fallback).
// Samples are fanned out across the batch worker pool; per-sample
// outcomes are aggregated in sample order, so every non-timing field is
// identical to a sequential run.
func Evaluate(sys *System, m *mtl.Model, val *dataset.Set, maxProblems int) EvalResult {
	return evaluate(sys, m, val, maxProblems, 0)
}

// evalOutcome is one sample's contribution to the aggregate.
type evalOutcome struct {
	skipped bool // cold baseline failed (should not happen)
	cold    *opf.Result
	warm    *WarmOutcome
}

func evaluate(sys *System, m *mtl.Model, val *dataset.Set, maxProblems, workers int) EvalResult {
	n := len(val.Samples)
	if maxProblems > 0 && n > maxProblems {
		n = maxProblems
	}
	res := EvalResult{System: sys.Name, NProblems: n}
	if n == 0 {
		return res
	}

	pool := newModelPool(m, batch.Workers(workers), n)
	outcomes, _ := batch.Map(n, batch.Options{Workers: workers}, func(t *batch.Task) (evalOutcome, error) {
		s := &val.Samples[t.Index]
		// Cold MIPS baseline (measured fresh — the dataset's stored time
		// may come from a different machine/load state).
		o := sys.instanceOPF(s.Factors)
		rc, err := o.Solve(nil, opf.Options{})
		if err != nil || !rc.Converged {
			return evalOutcome{skipped: true}, nil
		}
		mm := pool.get()
		w := sys.SolveWarm(mm, s.Factors, s.Input)
		pool.put(mm)
		return evalOutcome{cold: rc, warm: w}, nil
	})

	var iterM, iterS float64
	var nOK int
	var costDeltas []float64
	for _, out := range outcomes {
		if out.skipped {
			continue
		}
		rc, w := out.cold, out.warm
		res.TimeMIPS += rc.PrepTime + rc.SolveTime
		res.BreakMIPS.Pre += rc.PrepTime
		res.BreakMIPS.Newton += rc.SolveTime
		iterM += float64(rc.Iterations)

		res.TimeSmart += w.PrepTime + w.InferTime + w.WarmTime + w.RestartTime
		res.BreakSmart.Pre += w.PrepTime
		res.BreakSmart.MTL += w.InferTime
		res.BreakSmart.Newton += w.WarmTime
		res.BreakSmart.Restart += w.RestartTime
		iterS += float64(w.Iterations)
		if w.Converged {
			nOK++
		}
		if w.Cost > 0 && rc.Cost > 0 {
			costDeltas = append(costDeltas, abs(1-w.Cost/rc.Cost))
		}
	}
	res.IterMIPS = iterM / float64(n)
	res.IterSmart = iterS / float64(n)
	res.SR = float64(nOK) / float64(n)
	if res.TimeSmart > 0 {
		res.SU = float64(res.TimeMIPS) / float64(res.TimeSmart)
	}
	res.CostDelta = stats.Mean(costDeltas)
	return res
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// PrintFig4 renders the three panels of Figure 4 as rows.
func PrintFig4(w io.Writer, results []EvalResult) {
	fmt.Fprintln(w, "Figure 4 — MIPS vs Smart-PGSim")
	fmt.Fprintf(w, "%-10s %8s %12s %12s %7s %9s %9s %7s %10s\n",
		"system", "probs", "t_MIPS", "t_Smart", "SU", "it_MIPS", "it_Smart", "it%", "SR(noRst)")
	for _, r := range results {
		itPct := 0.0
		if r.IterMIPS > 0 {
			itPct = 100 * r.IterSmart / r.IterMIPS
		}
		fmt.Fprintf(w, "%-10s %8d %12s %12s %6.2fx %9.1f %9.1f %6.1f%% %9.1f%%\n",
			r.System, r.NProblems,
			r.TimeMIPS.Round(time.Millisecond), r.TimeSmart.Round(time.Millisecond),
			r.SU, r.IterMIPS, r.IterSmart, itPct, r.SR*100)
	}
}

// PrintFig5 renders the normalized runtime breakdown of Figure 5.
func PrintFig5(w io.Writer, results []EvalResult) {
	fmt.Fprintln(w, "Figure 5 — runtime breakdown (normalized to MIPS total)")
	fmt.Fprintf(w, "%-10s %-12s %8s %8s %8s %8s\n", "system", "pipeline", "pre", "newton", "mtl", "restart")
	for _, r := range results {
		tm := float64(r.TimeMIPS)
		if tm == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", r.System, "MIPS",
			100*float64(r.BreakMIPS.Pre)/tm, 100*float64(r.BreakMIPS.Newton)/tm, 0.0, 0.0)
		fmt.Fprintf(w, "%-10s %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", r.System, "Smart-PGSim",
			100*float64(r.BreakSmart.Pre)/tm, 100*float64(r.BreakSmart.Newton)/tm,
			100*float64(r.BreakSmart.MTL)/tm, 100*float64(r.BreakSmart.Restart)/tm)
	}
}
