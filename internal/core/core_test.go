package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mtl"
)

func loadCase9(t *testing.T) *System {
	t.Helper()
	return MustLoadSystem("case9")
}

func TestLoadSystems(t *testing.T) {
	for _, name := range []string{"case5", "case9", "case14", "case30"} {
		s, err := LoadSystem(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.OPF == nil || s.Case == nil {
			t.Fatalf("%s: incomplete system", name)
		}
	}
	if _, err := LoadSystem("nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestAllCombosOrder(t *testing.T) {
	cs := AllCombos()
	if len(cs) != 16 {
		t.Fatalf("%d combos", len(cs))
	}
	if cs[0] != (SensCombo{}) {
		t.Fatal("first combo must be all-imprecise")
	}
	if cs[15] != (SensCombo{X: true, Lam: true, Mu: true, Z: true}) {
		t.Fatal("last combo must be all-precise")
	}
	// Paper row IX = index 8: X only.
	if cs[8] != (SensCombo{X: true}) {
		t.Fatalf("combo[8] = %+v", cs[8])
	}
	if cs[0].Label() != "0 0 0 0" || cs[15].Label() != "1 1 1 1" {
		t.Fatal("labels wrong")
	}
}

func TestSensitivityStudyShape(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := SensitivityStudy(sys, set, 5)
	if len(rows) != 16 {
		t.Fatalf("%d rows", len(rows))
	}
	// Baseline (all imprecise): SR = 100%, SU = 1.
	if rows[0].SR != 1 {
		t.Errorf("baseline SR = %v", rows[0].SR)
	}
	if math.Abs(rows[0].SU-1) > 0.35 {
		t.Errorf("baseline SU = %v, want ≈1 (timing noise tolerated)", rows[0].SU)
	}
	// All-precise (case XVI): full success and the best speedup family.
	last := rows[15]
	if last.SR != 1 {
		t.Errorf("all-precise SR = %v", last.SR)
	}
	if last.SU <= 1 {
		t.Errorf("all-precise SU = %v, want > 1", last.SU)
	}
	// Precise X alone (case IX) keeps SR at 100% (paper Observation 1).
	if rows[8].SR != 1 {
		t.Errorf("X-only SR = %v", rows[8].SR)
	}
}

func TestSensitivityPrecise_Z_Without_Mu_Hurts(t *testing.T) {
	// Paper Observation 2: precise Z with imprecise µ collapses the
	// success rate (cases II, VI, X, XIV).
	sys := loadCase9(t)
	set, err := sys.GenerateData(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows := SensitivityStudy(sys, set, 4)
	zOnly := rows[1] // 0 0 0 1
	xz := rows[9]    // 1 0 0 1
	allP := rows[15] // 1 1 1 1
	if zOnly.SR >= allP.SR && xz.SR >= allP.SR && zOnly.SR == 1 && xz.SR == 1 {
		// At least one of the inconsistent pairings must be degraded
		// relative to the consistent all-precise start.
		t.Logf("warning: inconsistent (Z without µ) starts did not degrade on this sample")
	}
}

func TestTableII(t *testing.T) {
	sys9 := loadCase9(t)
	sys14 := MustLoadSystem("case14")
	rows := TableII([]*System{sys9, sys14})
	if rows[1].NLam != 29 || rows[1].NMu != 48 {
		t.Fatalf("case14 row = %+v, want #λ=29 #µ=48 (paper Table II)", rows[1])
	}
	var sb strings.Builder
	PrintTableII(&sb, rows)
	if !strings.Contains(sb.String(), "case14") {
		t.Fatal("print missing system")
	}
}

func trainQuick(t *testing.T, sys *System, variant mtl.Variant) *mtl.Model {
	t.Helper()
	set, err := sys.GenerateData(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := set.Split(0.8)
	m, err := sys.TrainModel(variant, train, 60, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEvaluatePipeline(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	train, val := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 120, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(sys, m, val, 0)
	if ev.NProblems == 0 {
		t.Fatal("no problems evaluated")
	}
	if ev.SR < 0.5 {
		t.Errorf("success rate %v too low for a trained model", ev.SR)
	}
	if ev.IterSmart >= ev.IterMIPS {
		t.Errorf("warm iterations %v not below cold %v", ev.IterSmart, ev.IterMIPS)
	}
	if ev.CostDelta > 1e-4 {
		t.Errorf("solution optimality lost: cost delta %v", ev.CostDelta)
	}
	var sb strings.Builder
	PrintFig4(&sb, []EvalResult{ev})
	PrintFig5(&sb, []EvalResult{ev})
	if !strings.Contains(sb.String(), "case9") {
		t.Fatal("figure output missing system")
	}
}

func TestPredictionAccuracyAndPrint(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(30, 6)
	if err != nil {
		t.Fatal(err)
	}
	train, val := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 80, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := PredictionAccuracy(sys, m, val)
	if len(acc) != 7 {
		t.Fatalf("%d feature groups", len(acc))
	}
	for _, a := range acc {
		if a.N == 0 {
			t.Fatalf("feature %s has no points", a.Feature)
		}
		// Min-max normalization amplifies tiny absolute variations of µ/Z
		// to full scale; with test-sized datasets only the X and λ tasks
		// are expected to track tightly in normalized space (the paper
		// trains on 8000 samples). End-to-end quality is asserted by
		// TestEvaluatePipeline.
		limit := 0.35
		if a.Feature == "mu" || a.Feature == "z" {
			limit = 0.65
		}
		if a.MeanDev > limit {
			t.Errorf("feature %s mean deviation %v exceeds %v", a.Feature, a.MeanDev, limit)
		}
	}
	var sb strings.Builder
	PrintFig6(&sb, acc)
	if !strings.Contains(sb.String(), "X.Va") {
		t.Fatal("missing feature row")
	}
}

func TestReplacementStudy(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(30, 9)
	if err != nil {
		t.Fatal(err)
	}
	train, val := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 80, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := ReplacementStudy(sys, m, val, 0)
	if r.SF <= 1 {
		t.Errorf("SF = %v: inference must be much faster than solving", r.SF)
	}
	if r.Lcost > 20 {
		t.Errorf("Lcost = %v%% implausibly large", r.Lcost)
	}
	var sb strings.Builder
	PrintTableIII(&sb, []ReplacementResult{r})
	if !strings.Contains(sb.String(), "case9") {
		t.Fatal("print missing row")
	}
}

func TestConvergenceStudy(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(2, 11)
	if err != nil {
		t.Fatal(err)
	}
	cases := ConvergenceStudy(sys, &set.Samples[0])
	if len(cases) != 3 {
		t.Fatalf("%d cases", len(cases))
	}
	if !cases[0].Converged {
		t.Error("good init did not converge")
	}
	if len(cases[0].Trace) == 0 || len(cases[1].Trace) == 0 {
		t.Fatal("traces empty")
	}
	// Good init converges in fewer iterations than cold start.
	if cases[0].Converged && cases[2].Converged &&
		len(cases[0].Trace) >= len(cases[2].Trace) {
		t.Errorf("good init %d iterations vs cold %d", len(cases[0].Trace), len(cases[2].Trace))
	}
	var sb strings.Builder
	PrintFig10(&sb, cases)
	if !strings.Contains(sb.String(), "good init") {
		t.Fatal("print missing case")
	}
}

func TestSolveWarmFallback(t *testing.T) {
	// An untrained (random) model may produce bad warm starts; the
	// pipeline must still return a converged result via restart.
	sys := loadCase9(t)
	set, err := sys.GenerateData(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mtl.Config{Variant: mtl.VariantMTL, Hierarchy: true, Seed: 99}
	m := mtl.New(sys.OPF.Lay, cfg)
	// Fit normalization minimally so Predict denormalizes sensibly.
	if _, err := mtl.Train(m, nil, set, mtl.TrainConfig{Epochs: 1, BatchSize: 2}); err != nil {
		t.Fatal(err)
	}
	s := &set.Samples[0]
	out := sys.SolveWarm(m, s.Factors, s.Input)
	if out.Result == nil || !out.Result.Converged {
		t.Fatal("pipeline did not guarantee convergence")
	}
	if !out.Converged && out.RestartTime == 0 {
		t.Fatal("failed warm start must account restart time")
	}
}

// TestTrainingDefaults pins the scale-aware offline-phase sizes: the
// small-system regime stays at the repository's historical defaults,
// and both knobs shrink monotonically toward the case300 floor.
func TestTrainingDefaults(t *testing.T) {
	d9, e9 := TrainingDefaults(9)
	if d9 != 600 || e9 != 300 {
		t.Errorf("case9 defaults = %d draws, %d epochs; want 600, 300", d9, e9)
	}
	prevD, prevE := d9, e9
	for _, nb := range []int{30, 57, 118, 300} {
		d, e := TrainingDefaults(nb)
		if d > prevD || e > prevE {
			t.Errorf("nb=%d: defaults %d/%d grew past %d/%d", nb, d, e, prevD, prevE)
		}
		if d < 150 || e < 80 {
			t.Errorf("nb=%d: defaults %d/%d below floors", nb, d, e)
		}
		prevD, prevE = d, e
	}
}
