package core

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/la"
	"repro/internal/mtl"
	"repro/internal/stats"
)

// FeatureAccuracy is one panel of Figure 6: normalized prediction vs
// ground truth for one feature group.
type FeatureAccuracy struct {
	Feature string
	R2      float64
	MaxDev  float64 // max |pred − truth| in normalized units
	MeanDev float64
	N       int
}

// PredictionAccuracy reproduces Figure 6: per-feature agreement between
// the model's normalized predictions and the normalized ground truth on
// a validation set.
func PredictionAccuracy(sys *System, m *mtl.Model, val *dataset.Set) []FeatureAccuracy {
	lay := sys.OPF.Lay
	groups := []struct {
		name   string
		off, n int
		group  string // "X", "Lam", "Mu", "Z"
	}{
		{"X.Va", lay.VaOff, lay.NB, "X"},
		{"X.Vm", lay.VmOff, lay.NB, "X"},
		{"X.Pg", lay.PgOff, lay.NG, "X"},
		{"X.Qg", lay.QgOff, lay.NG, "X"},
		{"lambda", 0, lay.NEq, "Lam"},
		{"mu", 0, lay.NIq, "Mu"},
		{"z", 0, lay.NIq, "Z"},
	}
	// Model inference fans out over the pool; the per-feature streams are
	// then accumulated in sample order, keeping them scheduling-independent.
	type normPair struct{ pred, truth [4]la.Vector }
	pool := newModelPool(m, batch.Workers(0), len(val.Samples))
	pairs, _ := batch.Map(len(val.Samples), batch.Options{}, func(t *batch.Task) (normPair, error) {
		s := &val.Samples[t.Index]
		mm := pool.get()
		st := mm.Predict(s.Input)
		pool.put(mm)
		return normPair{
			pred: [4]la.Vector{
				m.Norm.X.NormalizeVec(st.X),
				m.Norm.Lam.NormalizeVec(st.Lam),
				m.Norm.Mu.NormalizeVec(st.Mu),
				m.Norm.Z.NormalizeVec(st.Z),
			},
			truth: [4]la.Vector{
				m.Norm.X.NormalizeVec(s.X),
				m.Norm.Lam.NormalizeVec(s.Lam),
				m.Norm.Mu.NormalizeVec(s.Mu),
				m.Norm.Z.NormalizeVec(s.Z),
			},
		}, nil
	})

	var preds, truths [7][]float64
	for _, pair := range pairs {
		normPred, normTruth := pair.pred, pair.truth
		for gi, g := range groups {
			var pv, tv la.Vector
			switch g.group {
			case "X":
				pv, tv = normPred[0], normTruth[0]
			case "Lam":
				pv, tv = normPred[1], normTruth[1]
			case "Mu":
				pv, tv = normPred[2], normTruth[2]
			case "Z":
				pv, tv = normPred[3], normTruth[3]
			}
			for k := g.off; k < g.off+g.n; k++ {
				preds[gi] = append(preds[gi], pv[k])
				truths[gi] = append(truths[gi], tv[k])
			}
		}
	}
	out := make([]FeatureAccuracy, len(groups))
	for gi, g := range groups {
		devs := make([]float64, len(preds[gi]))
		maxDev := 0.0
		for i := range preds[gi] {
			d := math.Abs(preds[gi][i] - truths[gi][i])
			devs[i] = d
			if d > maxDev {
				maxDev = d
			}
		}
		out[gi] = FeatureAccuracy{
			Feature: g.name,
			R2:      stats.R2(preds[gi], truths[gi]),
			MaxDev:  maxDev,
			MeanDev: stats.Mean(devs),
			N:       len(preds[gi]),
		}
	}
	return out
}

// PrintFig6 renders the per-feature accuracy rows.
func PrintFig6(w io.Writer, acc []FeatureAccuracy) {
	fmt.Fprintln(w, "Figure 6 — prediction vs ground truth (normalized)")
	fmt.Fprintf(w, "%-8s %8s %10s %10s %8s\n", "feature", "R2", "meanDev", "maxDev", "points")
	for _, a := range acc {
		fmt.Fprintf(w, "%-8s %8.4f %10.4f %10.4f %8d\n", a.Feature, a.R2, a.MeanDev, a.MaxDev, a.N)
	}
}

// VariantResult is one bar group of Figure 7 plus the error box of
// Figure 8 for a model variant.
type VariantResult struct {
	Variant  mtl.Variant
	SU       float64
	SR       float64
	ErrorBox stats.Box // relative error |pred−gt|/|gt| over X features
}

// CompareModels trains the three variants of Figure 7 on the same data
// and evaluates speedup, success rate and relative prediction error.
func CompareModels(sys *System, train, val *dataset.Set, epochs int, seed int64, maxProblems int, logf func(string, ...any)) ([]VariantResult, error) {
	variants := []mtl.Variant{mtl.VariantSeparate, mtl.VariantMTL, mtl.VariantSmartPGSim}
	out := make([]VariantResult, 0, len(variants))
	for _, v := range variants {
		m, err := sys.TrainModel(v, train, epochs, seed, logf)
		if err != nil {
			return nil, err
		}
		ev := Evaluate(sys, m, val, maxProblems)
		out = append(out, VariantResult{
			Variant:  v,
			SU:       ev.SU,
			SR:       ev.SR,
			ErrorBox: relativeErrorBox(m, val),
		})
	}
	return out, nil
}

// relativeErrorBox computes the Figure 8 box statistics: RE =
// |pred − gt| / |gt| over the X features of every validation sample
// (entries with |gt| below a floor are skipped, matching the paper's
// use of relative error).
func relativeErrorBox(m *mtl.Model, val *dataset.Set) stats.Box {
	const floor = 1e-3
	pool := newModelPool(m, batch.Workers(0), len(val.Samples))
	perSample, _ := batch.Map(len(val.Samples), batch.Options{}, func(t *batch.Task) ([]float64, error) {
		s := &val.Samples[t.Index]
		mm := pool.get()
		st := mm.Predict(s.Input)
		pool.put(mm)
		var res []float64
		for i := range st.X {
			gt := s.X[i]
			if math.Abs(gt) < floor {
				continue
			}
			res = append(res, math.Abs(st.X[i]-gt)/math.Abs(gt))
		}
		return res, nil
	})
	var res []float64
	for _, r := range perSample {
		res = append(res, r...)
	}
	return stats.BoxStats(res)
}

// PrintFig7 renders the speedup/success-rate comparison.
func PrintFig7(w io.Writer, system string, rows []VariantResult) {
	fmt.Fprintf(w, "Figure 7 — model variants on %s\n", system)
	fmt.Fprintf(w, "%-14s %8s %8s\n", "variant", "SU", "SR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %7.2fx %7.1f%%\n", r.Variant, r.SU, r.SR*100)
	}
}

// PrintFig8 renders the relative-error box plots.
func PrintFig8(w io.Writer, system string, rows []VariantResult) {
	fmt.Fprintf(w, "Figure 8 — relative prediction error on %s\n", system)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %10s\n", "variant", "min", "q1", "median", "q3", "mean")
	for _, r := range rows {
		b := r.ErrorBox
		fmt.Fprintf(w, "%-14s %10.2e %10.2e %10.2e %10.2e %10.2e\n",
			r.Variant, b.Min, b.Q1, b.Median, b.Q3, b.Mean)
	}
}

// ReplacementResult is one system column of Table III: treating the MTL
// prediction as the final solution (no solver refinement).
type ReplacementResult struct {
	System string
	SF     float64 // mean T_MIPS / T_MTL per problem
	Lcost  float64 // mean |1 − C'/C| in percent
}

// ReplacementStudy reproduces Table III for one trained system.
func ReplacementStudy(sys *System, m *mtl.Model, val *dataset.Set, maxProblems int) ReplacementResult {
	n := len(val.Samples)
	if maxProblems > 0 && n > maxProblems {
		n = maxProblems
	}
	// SF is defined by the per-inference wall time, so this sweep stays
	// sequential on purpose: timing Predict while sibling workers
	// saturate the cores would fold scheduler contention into a paper
	// metric. The whole loop is inference-only and cheap.
	var sfs, lcosts []float64
	for i := 0; i < n; i++ {
		s := &val.Samples[i]
		t0 := time.Now()
		st := m.Predict(s.Input)
		tMTL := time.Since(t0)
		if tMTL <= 0 {
			tMTL = time.Nanosecond
		}
		// Cost of the predicted dispatch vs the true optimal cost.
		predCost := sys.OPF.Cost(st.X)
		if s.Cost > 0 {
			lcosts = append(lcosts, math.Abs(1-predCost/s.Cost)*100)
		}
		if s.SolveTime > 0 {
			sfs = append(sfs, float64(s.SolveTime)/float64(tMTL))
		}
	}
	return ReplacementResult{System: sys.Name, SF: stats.Mean(sfs), Lcost: stats.Mean(lcosts)}
}

// PrintTableIII renders the replacement-study rows.
func PrintTableIII(w io.Writer, rows []ReplacementResult) {
	fmt.Fprintln(w, "Table III — NN-as-final-solution (no solver refinement)")
	fmt.Fprintf(w, "%-10s %12s %10s\n", "system", "SF", "Lcost")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2fx %9.3f%%\n", r.System, r.SF, r.Lcost)
	}
}
