package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/opf"
	"repro/internal/stats"
)

// SensCombo selects which of the four warm-start components use precise
// (ground-truth) data; the rest use the imprecise MIPS defaults. The 16
// combinations reproduce Table I.
type SensCombo struct {
	X, Lam, Mu, Z bool
}

// Label renders the combo as the paper's 0/1 row header.
func (c SensCombo) Label() string {
	b := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	return string([]byte{b(c.X), ' ', b(c.Lam), ' ', b(c.Mu), ' ', b(c.Z)})
}

// AllCombos lists the 16 rows of Table I in the paper's order
// (X, λ, µ, Z as a binary counter with X most significant).
func AllCombos() []SensCombo {
	out := make([]SensCombo, 0, 16)
	for i := 0; i < 16; i++ {
		out = append(out, SensCombo{
			X:   i&8 != 0,
			Lam: i&4 != 0,
			Mu:  i&2 != 0,
			Z:   i&1 != 0,
		})
	}
	return out
}

// SensRow is one (system, combo) cell pair of Table I.
type SensRow struct {
	Combo SensCombo
	// SR is the fraction of problems that converged from this start.
	SR float64
	// SU is the mean speedup of the successful solves relative to the
	// all-default baseline solve of the same problem (time-based, as in
	// the paper). NaN when SR = 0.
	SU float64
}

// SensitivityStudy reproduces one system column of Table I: for every
// combination of precise/imprecise initialization components, solve each
// sampled problem and record success rate and speedup. The dataset
// provides both the problems and their ground-truth solver states. The
// 16×n solve grid is flattened onto the batch worker pool; rows are
// aggregated in (combo, problem) order, so the SR column is identical to
// a sequential run (SU is time-based and inherently noisy).
func SensitivityStudy(sys *System, set *dataset.Set, maxProblems int) []SensRow {
	n := len(set.Samples)
	if maxProblems > 0 && n > maxProblems {
		n = maxProblems
	}
	combos := AllCombos()
	rows := make([]SensRow, len(combos))
	if n == 0 {
		return rows
	}

	// Baseline (all imprecise) times per problem.
	baseTime, _ := batch.Map(n, batch.Options{}, func(t *batch.Task) (time.Duration, error) {
		o := sys.instanceOPF(set.Samples[t.Index].Factors)
		r, err := o.Solve(nil, opf.Options{})
		if err != nil || !r.Converged {
			// The dataset only contains solvable instances, so this
			// should not happen; guard regardless.
			return -1, nil
		}
		return r.SolveTime, nil
	})

	// One task per (combo, problem) cell.
	type cell struct {
		ok bool
		su float64
	}
	cells, _ := batch.Map(len(combos)*n, batch.Options{}, func(t *batch.Task) (cell, error) {
		combo := combos[t.Index/n]
		i := t.Index % n
		if baseTime[i] < 0 {
			return cell{}, nil
		}
		s := &set.Samples[i]
		o := sys.instanceOPF(s.Factors)
		start := &opf.Start{}
		if combo.X {
			start.X = s.X
		}
		if combo.Lam {
			start.Lam = s.Lam
		}
		if combo.Mu {
			start.Mu = s.Mu
		}
		if combo.Z {
			start.Z = s.Z
		}
		var r *opf.Result
		var err error
		if !combo.X && !combo.Lam && !combo.Mu && !combo.Z {
			r, err = o.Solve(nil, opf.Options{})
		} else {
			r, err = o.Solve(start, opf.Options{})
		}
		if err != nil || !r.Converged {
			return cell{}, nil
		}
		return cell{ok: true, su: float64(baseTime[i]) / float64(r.SolveTime)}, nil
	})

	for ci, combo := range combos {
		var okCount int
		var sus []float64
		for i := 0; i < n; i++ {
			c := cells[ci*n+i]
			if c.ok {
				okCount++
				sus = append(sus, c.su)
			}
		}
		row := SensRow{Combo: combo, SR: float64(okCount) / float64(n)}
		if len(sus) > 0 {
			row.SU = stats.GeoMean(sus)
		}
		rows[ci] = row
	}
	return rows
}

// PrintTableI renders sensitivity rows for several systems side by side,
// matching the layout of Table I.
func PrintTableI(w io.Writer, systems []string, results map[string][]SensRow) {
	fmt.Fprintf(w, "Table I — ablation on warm-start components (SR %%, SU ×)\n")
	fmt.Fprintf(w, "%-12s", "X λ µ Z")
	for _, s := range systems {
		fmt.Fprintf(w, " | %-14s", s)
	}
	fmt.Fprintln(w)
	for ci, combo := range AllCombos() {
		fmt.Fprintf(w, "%-12s", combo.Label())
		for _, s := range systems {
			rows := results[s]
			if rows == nil {
				fmt.Fprintf(w, " | %-14s", "-")
				continue
			}
			r := rows[ci]
			if r.SR == 0 {
				fmt.Fprintf(w, " | %3.0f%%      --  ", r.SR*100)
			} else {
				fmt.Fprintf(w, " | %3.0f%%  %6.2fx ", r.SR*100, r.SU)
			}
		}
		fmt.Fprintln(w)
	}
}
