package core

import (
	"testing"

	"repro/internal/mtl"
)

// TestEvaluateParallelEquivalence: the pooled evaluation sweep must
// report the same deterministic aggregates (problem count, success rate,
// iteration means, cost delta) as the sequential reference path —
// timing-derived fields excluded.
func TestEvaluateParallelEquivalence(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(30, 9)
	if err != nil {
		t.Fatal(err)
	}
	train, val := set.Split(0.8)
	m, err := sys.TrainModel(mtl.VariantSmartPGSim, train, 80, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := evaluate(sys, m, val, 0, 1)
	par := evaluate(sys, m, val, 0, 4)
	if seq.NProblems != par.NProblems {
		t.Fatalf("NProblems: seq %d, par %d", seq.NProblems, par.NProblems)
	}
	if seq.SR != par.SR {
		t.Fatalf("SR: seq %v, par %v", seq.SR, par.SR)
	}
	if seq.IterMIPS != par.IterMIPS || seq.IterSmart != par.IterSmart {
		t.Fatalf("iterations: seq %v/%v, par %v/%v",
			seq.IterMIPS, seq.IterSmart, par.IterMIPS, par.IterSmart)
	}
	if seq.CostDelta != par.CostDelta {
		t.Fatalf("CostDelta: seq %v, par %v", seq.CostDelta, par.CostDelta)
	}
}

// TestSensitivityStudyDeterministic: the flattened (combo × problem)
// grid must give a stable SR column run over run (scheduling must not
// leak into results).
func TestSensitivityStudyDeterministic(t *testing.T) {
	sys := loadCase9(t)
	set, err := sys.GenerateData(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := SensitivityStudy(sys, set, 4)
	b := SensitivityStudy(sys, set, 4)
	for i := range a {
		if a[i].SR != b[i].SR {
			t.Fatalf("combo %s: SR %v vs %v across runs", a[i].Combo.Label(), a[i].SR, b[i].SR)
		}
	}
}
