package core

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/mips"
	"repro/internal/opf"
)

// ConvergenceCase pairs a label with a per-iteration solver trace
// (step size and the four termination conditions of Figure 10).
type ConvergenceCase struct {
	Label     string
	Converged bool
	Trace     []mips.IterStat
}

// ConvergenceStudy reproduces Figure 10 on one problem instance: the
// solver trace from a good initial solution (the exact warm start) and
// from a bad one (precise slacks Z with default multipliers µ — the
// inconsistent pairing Table I identifies as the divergence trigger).
func ConvergenceStudy(sys *System, s *dataset.Sample) []ConvergenceCase {
	opts := opf.Options{RecordTrace: true, MaxIter: 60}
	out := make([]ConvergenceCase, 0, 3)

	o := sys.instanceOPF(s.Factors)
	rGood, _ := o.Solve(&opf.Start{X: s.X, Lam: s.Lam, Mu: s.Mu, Z: s.Z}, opts)
	out = append(out, ConvergenceCase{Label: "good init (exact warm start)", Converged: rGood.Converged, Trace: rGood.Trace})

	o = sys.instanceOPF(s.Factors)
	rBad, _ := o.Solve(&opf.Start{X: s.X, Z: s.Z}, opts)
	out = append(out, ConvergenceCase{Label: "bad init (precise Z, default mu)", Converged: rBad.Converged, Trace: rBad.Trace})

	o = sys.instanceOPF(s.Factors)
	rCold, _ := o.Solve(nil, opts)
	out = append(out, ConvergenceCase{Label: "default init (cold start)", Converged: rCold.Converged, Trace: rCold.Trace})
	return out
}

// PrintFig10 renders the traces as columns (step size + four criteria).
func PrintFig10(w io.Writer, cases []ConvergenceCase) {
	fmt.Fprintln(w, "Figure 10 — convergence traces (step size and termination conditions)")
	for _, c := range cases {
		fmt.Fprintf(w, "\n[%s] converged=%v iterations=%d\n", c.Label, c.Converged, len(c.Trace))
		fmt.Fprintf(w, "%4s %12s %12s %12s %12s %12s\n", "it", "step", "feas", "grad", "comp", "cost")
		for _, t := range c.Trace {
			fmt.Fprintf(w, "%4d %12.3e %12.3e %12.3e %12.3e %12.3e\n",
				t.Iter, t.StepSize, t.FeasCond, t.GradCond, t.CompCond, t.CostCond)
		}
	}
}
