package core

import (
	"fmt"
	"io"

	"repro/internal/batch"
	"repro/internal/dataset"
	"repro/internal/mips"
	"repro/internal/opf"
)

// ConvergenceCase pairs a label with a per-iteration solver trace
// (step size and the four termination conditions of Figure 10).
type ConvergenceCase struct {
	Label     string
	Converged bool
	Trace     []mips.IterStat
}

// ConvergenceStudy reproduces Figure 10 on one problem instance: the
// solver trace from a good initial solution (the exact warm start) and
// from a bad one (precise slacks Z with default multipliers µ — the
// inconsistent pairing Table I identifies as the divergence trigger).
// The three solves are independent and run concurrently on the batch
// pool; the returned order is fixed.
func ConvergenceStudy(sys *System, s *dataset.Sample) []ConvergenceCase {
	opts := opf.Options{RecordTrace: true, MaxIter: 60}
	starts := []struct {
		label string
		start *opf.Start
	}{
		{"good init (exact warm start)", &opf.Start{X: s.X, Lam: s.Lam, Mu: s.Mu, Z: s.Z}},
		{"bad init (precise Z, default mu)", &opf.Start{X: s.X, Z: s.Z}},
		{"default init (cold start)", nil},
	}
	out, _ := batch.Map(len(starts), batch.Options{}, func(t *batch.Task) (ConvergenceCase, error) {
		o := sys.instanceOPF(s.Factors)
		r, _ := o.Solve(starts[t.Index].start, opts)
		return ConvergenceCase{Label: starts[t.Index].label, Converged: r.Converged, Trace: r.Trace}, nil
	})
	return out
}

// PrintFig10 renders the traces as columns (step size + four criteria).
func PrintFig10(w io.Writer, cases []ConvergenceCase) {
	fmt.Fprintln(w, "Figure 10 — convergence traces (step size and termination conditions)")
	for _, c := range cases {
		fmt.Fprintf(w, "\n[%s] converged=%v iterations=%d\n", c.Label, c.Converged, len(c.Trace))
		fmt.Fprintf(w, "%4s %12s %12s %12s %12s %12s\n", "it", "step", "feas", "grad", "comp", "cost")
		for _, t := range c.Trace {
			fmt.Fprintf(w, "%4d %12.3e %12.3e %12.3e %12.3e %12.3e\n",
				t.Iter, t.StepSize, t.FeasCond, t.GradCond, t.CompCond, t.CostCond)
		}
	}
}
