package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input should yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Error("min/max wrong")
	}
	if p := Percentile(xs, 50); math.Abs(p-2.5) > 1e-12 {
		t.Errorf("median = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("input mutated")
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Median != 3 || b.Min != 1 || b.Max != 5 || b.N != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %v %v", b.Q1, b.Q3)
	}
}

func TestR2(t *testing.T) {
	truth := []float64{1, 2, 3}
	if r := R2(truth, truth); r != 1 {
		t.Errorf("perfect R2 = %v", r)
	}
	pred := []float64{2, 2, 2} // predicting the mean gives R2 = 0
	if r := R2(pred, truth); math.Abs(r) > 1e-12 {
		t.Errorf("mean-predictor R2 = %v", r)
	}
}

// Percentiles are monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
