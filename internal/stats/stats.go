// Package stats provides the summary statistics used by the experiment
// harness: means, percentiles and the box-plot five-number summaries of
// Figure 8.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Box is a five-number box-plot summary (plus mean), as used in the
// paper's Figure 8.
type Box struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// BoxStats computes the summary of a sample.
func BoxStats(xs []float64) Box {
	if len(xs) == 0 {
		return Box{Min: math.NaN(), Q1: math.NaN(), Median: math.NaN(), Q3: math.NaN(), Max: math.NaN(), Mean: math.NaN()}
	}
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// R2 returns the coefficient of determination of pred against truth.
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	m := Mean(truth)
	var ssRes, ssTot float64
	for i := range pred {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
