// Package batch is the parallel batch-execution engine behind every
// embarrassingly-parallel stage of the reproduction: dataset generation,
// the train/test evaluation sweeps, the Table I ablation grid, the
// synthetic-system construction of casegen and the scaling study all fan
// their per-case work out through this worker pool.
//
// The engine is built for reproducibility first and throughput second:
//
//   - Determinism. Each task receives its own rand.Rand seeded from
//     (base seed, task index) via a splitmix64 mix, so random draws do
//     not depend on how tasks interleave across workers, and Map returns
//     results in task-index order. A run with 1 worker and a run with 64
//     workers produce bit-identical outputs (timing fields aside).
//   - Error aggregation. Every task error is collected and reported —
//     joined in task-index order — rather than aborting at the first
//     failure, matching the workload's "skip unsolvable draws" policy.
//   - Panic propagation. A panic inside a task is recovered in the
//     worker and re-raised in the caller's goroutine with the task index
//     attached, so a crash in a 10k-case sweep still points at the case
//     that caused it.
//
// Worker-count resolution (first positive value wins): the explicit
// Options.Workers, the PGSIM_WORKERS environment variable, the
// process-wide default set by SetDefaultWorkers (the cmd/* -workers
// flag), then GOMAXPROCS. Workers=1 runs tasks inline on the calling
// goroutine — the reference sequential path.
package batch

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Task is the per-invocation context handed to a task function.
type Task struct {
	// Index is the task's position in [0, N); results keyed by Index are
	// scheduling-independent.
	Index int
	// RNG is a private generator seeded deterministically from the pool's
	// base seed and Index. Tasks must draw randomness only from it (or
	// from pre-drawn inputs) to stay reproducible across worker counts.
	RNG *rand.Rand
}

// Options configures one pool run.
type Options struct {
	// Workers is the pool size; 0 defers to PGSIM_WORKERS, then the
	// SetDefaultWorkers value, then GOMAXPROCS. 1 is fully sequential.
	Workers int
	// Seed is the base seed for per-task RNGs (see TaskSeed).
	Seed int64
	// OnProgress, when non-nil, is called after every task completes with
	// the number done so far and the total. Calls are serialized but not
	// ordered by task index.
	OnProgress func(done, total int)
}

// defaultWorkers holds the process-wide pool size installed by
// SetDefaultWorkers (the cmd/* -workers flag); 0 means unset.
var defaultWorkers atomic.Int64

// SetDefaultWorkers installs a process-wide default pool size used when
// Options.Workers is 0 and PGSIM_WORKERS is unset. n ≤ 0 clears it.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves the effective pool size for the given explicit value:
// explicit > PGSIM_WORKERS > SetDefaultWorkers > GOMAXPROCS.
func Workers(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv("PGSIM_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// activeWorkers sums the pool sizes of every Run currently in flight.
// Nested intra-solve parallelism (the sparse solver's thread option)
// sizes itself against it through ThreadBudget, so batch workers and
// solver threads never oversubscribe the machine together.
var activeWorkers atomic.Int64

// ActiveWorkers reports the summed pool sizes of the batch runs in
// flight (0 when none) — the concurrency-accounting property tests
// observe it.
func ActiveWorkers() int { return int(activeWorkers.Load()) }

// ThreadBudget caps a requested intra-task thread count against the
// worker pools currently running: the product of active workers and the
// returned budget never exceeds GOMAXPROCS, so a -workers W sweep whose
// tasks each ask for T solver threads runs W×min(T, GOMAXPROCS/W)
// goroutines, not W×T. Outside any batch run the request passes through
// (floored at 1); SolverThreads' own GOMAXPROCS clamp bounds it above.
func ThreadBudget(threads int) int {
	if threads < 1 {
		threads = 1
	}
	w := int(activeWorkers.Load())
	if w < 1 {
		w = 1
	}
	per := runtime.GOMAXPROCS(0) / w
	if per < 1 {
		per = 1
	}
	if threads > per {
		return per
	}
	return threads
}

// TaskSeed derives the deterministic RNG seed of task index under base —
// a splitmix64 finalization step, so nearby indices get well-separated
// streams regardless of the base seed.
func TaskSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// TaskError attributes a task function's error to its task index.
type TaskError struct {
	Index int
	Err   error
}

// Error formats the error with its task index prefixed.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// taskPanic carries a recovered panic value from a worker back to the
// calling goroutine.
type taskPanic struct {
	index int
	value any
}

// Run executes fn for task indices 0..n-1 on a worker pool and blocks
// until all tasks finish. Task errors do not cancel the run; they are
// collected and returned joined in task-index order (errors.Join), each
// wrapped in a *TaskError. A task panic is re-raised in the caller's
// goroutine after the pool drains.
func Run(n int, opt Options, fn func(t *Task) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(opt.Workers)
	if workers > n {
		workers = n
	}
	// Register the pool for nested-parallelism accounting (ThreadBudget)
	// for the duration of the run — the sequential path included, since
	// its inline tasks occupy the calling goroutine's core all the same.
	activeWorkers.Add(int64(workers))
	defer activeWorkers.Add(int64(-workers))

	errs := make([]error, n)
	var done atomic.Int64
	var progressMu sync.Mutex
	var panicked atomic.Pointer[taskPanic]

	runTask := func(idx int) {
		t := &Task{Index: idx, RNG: rand.New(rand.NewSource(TaskSeed(opt.Seed, idx)))}
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &taskPanic{index: idx, value: r})
			}
			d := int(done.Add(1))
			if opt.OnProgress != nil {
				progressMu.Lock()
				opt.OnProgress(d, n)
				progressMu.Unlock()
			}
		}()
		errs[idx] = fn(t)
	}

	if workers == 1 {
		// Sequential reference path: run inline, but keep the panic
		// bookkeeping identical to the pooled path.
		for i := 0; i < n; i++ {
			if panicked.Load() != nil {
				break
			}
			runTask(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					runTask(idx)
				}
			}()
		}
		for i := 0; i < n; i++ {
			if panicked.Load() != nil {
				break // stop feeding a crashed run
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("batch: task %d panicked: %v", p.index, p.value))
	}
	joined := make([]error, 0, len(errs))
	for i, err := range errs {
		if err != nil {
			joined = append(joined, &TaskError{Index: i, Err: err})
		}
	}
	return errors.Join(joined...)
}

// Map runs fn for task indices 0..n-1 on the pool and returns the
// results in task-index order, so the output is identical for any worker
// count. Error and panic semantics match Run; results of failed tasks
// are the zero value.
func Map[T any](n int, opt Options, fn func(t *Task) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(n, opt, func(t *Task) error {
		v, err := fn(t)
		out[t.Index] = v
		return err
	})
	return out, err
}
