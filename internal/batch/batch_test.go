package batch

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapDeterministicAcrossWorkerCounts is the engine's core contract:
// a task that mixes its index with draws from its private RNG produces
// bit-identical output for any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 200
	run := func(workers int) []float64 {
		out, err := Map(n, Options{Workers: workers, Seed: 42}, func(task *Task) (float64, error) {
			v := float64(task.Index)
			for i := 0; i < 5; i++ {
				v += task.RNG.Float64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8, 64} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %v, sequential ref %v", w, i, got[i], ref[i])
			}
		}
	}
}

// TestTaskSeedStable pins the seed derivation: changing it would silently
// change every generated dataset.
func TestTaskSeedStable(t *testing.T) {
	if TaskSeed(1, 0) == TaskSeed(1, 1) {
		t.Fatal("adjacent task seeds collide")
	}
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Fatal("base seed does not separate streams")
	}
	if got, want := TaskSeed(0, 0), TaskSeed(0, 0); got != want {
		t.Fatalf("TaskSeed not pure: %d != %d", got, want)
	}
}

// TestErrorAggregation: every failing task is reported, wrapped with its
// index, joined in index order, and successful results survive.
func TestErrorAggregation(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := Map(10, Options{Workers: 4}, func(task *Task) (int, error) {
		if task.Index%3 == 0 {
			return 0, fmt.Errorf("idx %d: %w", task.Index, sentinel)
		}
		return task.Index * 10, nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 0 {
		t.Fatalf("first TaskError should be index 0, got %+v", te)
	}
	msg := err.Error()
	for _, idx := range []int{0, 3, 6, 9} {
		if !strings.Contains(msg, fmt.Sprintf("task %d:", idx)) {
			t.Fatalf("error for task %d missing from %q", idx, msg)
		}
	}
	if out[1] != 10 || out[4] != 40 {
		t.Fatalf("successful results clobbered: %v", out)
	}
	if out[3] != 0 {
		t.Fatalf("failed task should leave zero value, got %d", out[3])
	}
}

// TestPanicPropagation: a worker panic must surface as a panic in the
// caller's goroutine, naming the task, for both pool shapes.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "task 5 panicked: kaput") {
					t.Fatalf("workers=%d: unexpected panic value %v", workers, r)
				}
			}()
			_ = Run(20, Options{Workers: workers}, func(task *Task) error {
				if task.Index == 5 {
					panic("kaput")
				}
				return nil
			})
		}()
	}
}

// TestProgressCallback: OnProgress must fire once per task with a final
// call of (n, n).
func TestProgressCallback(t *testing.T) {
	const n = 50
	var calls atomic.Int64
	var sawFinal atomic.Bool
	err := Run(n, Options{Workers: 8, OnProgress: func(done, total int) {
		calls.Add(1)
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		if done == n {
			sawFinal.Store(true)
		}
	}}, func(task *Task) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("OnProgress fired %d times, want %d", calls.Load(), n)
	}
	if !sawFinal.Load() {
		t.Fatal("never saw done == total")
	}
}

// TestWorkerResolution covers the explicit > env > default > GOMAXPROCS
// chain.
func TestWorkerResolution(t *testing.T) {
	SetDefaultWorkers(0)
	t.Cleanup(func() { SetDefaultWorkers(0) })

	if got := Workers(7); got != 7 {
		t.Fatalf("explicit: got %d", got)
	}
	t.Setenv("PGSIM_WORKERS", "3")
	if got := Workers(0); got != 3 {
		t.Fatalf("env: got %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("explicit beats env: got %d", got)
	}
	t.Setenv("PGSIM_WORKERS", "")
	SetDefaultWorkers(2)
	if got := Workers(0); got != 2 {
		t.Fatalf("SetDefaultWorkers: got %d", got)
	}
	SetDefaultWorkers(0)
	if got := Workers(0); got < 1 {
		t.Fatalf("GOMAXPROCS fallback: got %d", got)
	}
	t.Setenv("PGSIM_WORKERS", "not-a-number")
	if got := Workers(0); got < 1 {
		t.Fatalf("bad env should fall through, got %d", got)
	}
}

// TestThreadBudgetOversubscription is the nested-parallelism accounting
// property: from inside a Run at any worker count, the per-task solver
// thread budget times the registered worker count never exceeds the
// machine — workers × ThreadBudget(T) ≤ max(GOMAXPROCS, workers) for
// every requested T. Outside any Run the budget degrades to a plain
// GOMAXPROCS clamp.
func TestThreadBudgetOversubscription(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	if aw := ActiveWorkers(); aw != 0 {
		t.Fatalf("ActiveWorkers = %d before any Run, want 0", aw)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, threads := range []int{1, 2, 4, 8, 1 << 20} {
			var bad atomic.Int64
			err := Run(3*workers, Options{Workers: workers}, func(task *Task) error {
				aw := ActiveWorkers()
				tb := ThreadBudget(threads)
				if tb < 1 || aw < 1 {
					bad.Add(1)
					return fmt.Errorf("task %d: budget %d, workers %d", task.Index, tb, aw)
				}
				limit := maxProcs
				if aw > limit {
					limit = aw
				}
				if aw*tb > limit {
					bad.Add(1)
					return fmt.Errorf("task %d: %d workers × %d threads oversubscribes %d procs",
						task.Index, aw, tb, maxProcs)
				}
				return nil
			})
			if err != nil || bad.Load() != 0 {
				t.Fatalf("workers=%d threads=%d: %v", workers, threads, err)
			}
		}
	}
	if aw := ActiveWorkers(); aw != 0 {
		t.Fatalf("ActiveWorkers = %d after Runs returned, want 0", aw)
	}
	if tb := ThreadBudget(1 << 20); tb != maxProcs {
		t.Fatalf("idle ThreadBudget(huge) = %d, want GOMAXPROCS %d", tb, maxProcs)
	}
	if tb := ThreadBudget(0); tb != 1 {
		t.Fatalf("ThreadBudget(0) = %d, want 1", tb)
	}
}

// TestRunEmpty: n ≤ 0 is a no-op.
func TestRunEmpty(t *testing.T) {
	called := false
	if err := Run(0, Options{}, func(task *Task) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("task fn called for n=0")
	}
}
