package ed

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dcopf"
	"repro/internal/grid"
	"repro/internal/mips"
)

func TestCase9Dispatch(t *testing.T) {
	c := grid.Case9()
	p, _ := c.TotalLoad()
	r, err := Solve(c, p)
	if err != nil {
		t.Fatal(err)
	}
	var tot float64
	for _, pg := range r.Pg {
		tot += pg
	}
	if math.Abs(tot-p) > 1e-6 {
		t.Fatalf("dispatch %.4f != demand %.4f", tot, p)
	}
	// Equal incremental cost for interior units.
	gens := c.ActiveGens()
	for i, g := range gens {
		if r.Pg[i] > g.Pmin+1e-6 && r.Pg[i] < g.Pmax-1e-6 {
			if math.Abs(g.Cost.Deriv(r.Pg[i])-r.Lambda) > 1e-6 {
				t.Errorf("gen %d marginal cost %.4f != lambda %.4f",
					i, g.Cost.Deriv(r.Pg[i]), r.Lambda)
			}
		}
	}
}

func TestRelaxationOrdering(t *testing.T) {
	// ED ignores the network, DC linearizes it, AC is exact:
	// cost(ED) ≤ cost(DC) ≤ cost(AC) on the same demand.
	c := grid.Case9()
	p, _ := c.TotalLoad()
	edr, err := Solve(c, p)
	if err != nil {
		t.Fatal(err)
	}
	dcr, err := dcopf.Solve(c, mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if edr.Cost > dcr.Cost+1e-6 {
		t.Fatalf("ED cost %.2f exceeds DC cost %.2f", edr.Cost, dcr.Cost)
	}
}

func TestLimitsRespected(t *testing.T) {
	c := grid.Case14()
	p, _ := c.TotalLoad()
	r, err := Solve(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range c.ActiveGens() {
		if r.Pg[i] < g.Pmin-1e-9 || r.Pg[i] > g.Pmax+1e-9 {
			t.Errorf("gen %d dispatch %.4f outside [%.1f, %.1f]", i, r.Pg[i], g.Pmin, g.Pmax)
		}
	}
}

func TestInfeasibleDemand(t *testing.T) {
	c := grid.Case9()
	if _, err := Solve(c, 1e6); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Solve(c, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("below-Pmin err = %v", err)
	}
}

func TestLinearCosts(t *testing.T) {
	// case5 has linear costs: cheapest units saturate first
	// (merit order: Brighton 10 < Alta 14 < ParkCity 15 < Solitude 30 < Sundance 40).
	c := grid.Case5()
	p, _ := c.TotalLoad()
	r, err := Solve(c, p)
	if err != nil {
		t.Fatal(err)
	}
	gens := c.ActiveGens()
	// Brighton (index 4, $10) must be at Pmax; Sundance (index 3, $40)
	// at Pmin.
	if math.Abs(r.Pg[4]-gens[4].Pmax) > 1e-6 {
		t.Errorf("cheapest unit not saturated: %.2f of %.2f", r.Pg[4], gens[4].Pmax)
	}
	if math.Abs(r.Pg[3]-gens[3].Pmin) > 1e-6 {
		t.Errorf("most expensive unit dispatched: %.2f", r.Pg[3])
	}
}

// Property: for random demands within capacity, the dispatch balances
// exactly, respects limits, and cost is monotone in demand.
func TestDispatchProperty(t *testing.T) {
	c := grid.Case14()
	gens := c.ActiveGens()
	var pmin, pmax float64
	for _, g := range gens {
		pmin += g.Pmin
		pmax += g.Pmax
	}
	f := func(frac float64) bool {
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			return true
		}
		frac = math.Abs(frac)
		frac -= math.Floor(frac) // into [0,1)
		d1 := pmin + frac*(pmax-pmin)*0.9
		d2 := d1 + (pmax-d1)*0.05
		r1, err1 := Solve(c, d1)
		r2, err2 := Solve(c, d2)
		if err1 != nil || err2 != nil {
			return false
		}
		var t1 float64
		for _, pg := range r1.Pg {
			t1 += pg
		}
		if math.Abs(t1-d1) > 1e-6 {
			return false
		}
		return r2.Cost >= r1.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
