// Package ed implements classical economic dispatch — the most relaxed
// member of the OPF family in the paper's taxonomy (ED ⊂ DC-OPF ⊂
// AC-OPF): allocate a total demand across generators at minimum cost,
// ignoring the network entirely.
//
// For convex quadratic costs the optimality condition is the equal
// incremental-cost criterion: every generator off its limits runs at the
// common marginal price λ. The solver is the textbook lambda iteration
// (bisection on λ with limit clamping), which serves as an independent
// lower-bound cross-check for the DC and AC solvers: relaxing constraints
// can only lower the optimal cost.
package ed

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
)

// Result is a solved dispatch.
type Result struct {
	Pg     []float64 // MW per in-service generator
	Lambda float64   // system marginal price, $/MWh
	Cost   float64   // total cost, $/hr
	Iter   int
}

// ErrInfeasible is returned when demand lies outside total capacity.
var ErrInfeasible = errors.New("ed: demand outside total generator capacity")

// Solve dispatches demand (MW) across the case's in-service generators.
func Solve(c *grid.Case, demand float64) (*Result, error) {
	gens := c.ActiveGens()
	if len(gens) == 0 {
		return nil, fmt.Errorf("ed: case %q has no in-service generators", c.Name)
	}
	var pmin, pmax float64
	for _, g := range gens {
		pmin += g.Pmin
		pmax += g.Pmax
	}
	if demand < pmin-1e-9 || demand > pmax+1e-9 {
		return nil, fmt.Errorf("%w: demand %.1f MW, capacity [%.1f, %.1f]", ErrInfeasible, demand, pmin, pmax)
	}

	// Dispatch at marginal price lam: each unit runs where cost' = lam,
	// clamped to its limits. For linear costs (C2 = 0) the unit switches
	// from Pmin to Pmax as lam crosses C1.
	dispatchAt := func(lam float64) float64 {
		total := 0.0
		for _, g := range gens {
			total += unitAt(g, lam)
		}
		return total
	}

	// Bracket lam.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range gens {
		lo = math.Min(lo, g.Cost.Deriv(g.Pmin))
		hi = math.Max(hi, g.Cost.Deriv(g.Pmax))
	}
	lo -= 1
	hi += 1

	res := &Result{}
	for iter := 0; iter < 200; iter++ {
		lam := (lo + hi) / 2
		total := dispatchAt(lam)
		res.Iter = iter + 1
		if math.Abs(total-demand) < 1e-9 || hi-lo < 1e-13*(1+math.Abs(hi)) {
			res.Lambda = lam
			break
		}
		if total < demand {
			lo = lam
		} else {
			hi = lam
		}
		res.Lambda = lam
	}
	res.Pg = make([]float64, len(gens))
	shortfall := demand
	for i, g := range gens {
		res.Pg[i] = unitAt(g, res.Lambda)
		shortfall -= res.Pg[i]
	}
	// Distribute any residual (from ties between identically-priced
	// linear units) over units with headroom.
	if math.Abs(shortfall) > 1e-9 {
		for i, g := range gens {
			if shortfall > 0 {
				room := g.Pmax - res.Pg[i]
				d := math.Min(room, shortfall)
				res.Pg[i] += d
				shortfall -= d
			} else {
				room := res.Pg[i] - g.Pmin
				d := math.Min(room, -shortfall)
				res.Pg[i] -= d
				shortfall += d
			}
			if math.Abs(shortfall) < 1e-9 {
				break
			}
		}
	}
	for i, g := range gens {
		res.Cost += g.Cost.Eval(res.Pg[i])
	}
	return res, nil
}

// unitAt returns a generator's output at marginal price lam, clamped to
// its limits.
func unitAt(g grid.Gen, lam float64) float64 {
	if g.Cost.C2 <= 0 {
		// Linear cost: bang-bang at lam == C1.
		if lam > g.Cost.C1 {
			return g.Pmax
		}
		return g.Pmin
	}
	p := (lam - g.Cost.C1) / (2 * g.Cost.C2)
	return math.Max(g.Pmin, math.Min(g.Pmax, p))
}
