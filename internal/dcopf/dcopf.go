// Package dcopf implements the DC optimal power flow — the linearized
// relaxation of AC-OPF discussed in the paper's related work (the problem
// class targeted by DeepOPF and the statistical-learning baselines).
//
// Under the DC assumptions (flat voltage magnitudes, small angles,
// lossless branches) the power flow becomes linear in the bus angles:
//
//	P = Bbus·θ,  Pf = Bf·θ,
//
// and the OPF reduces to a quadratic program over x = [θ; Pg], which this
// package assembles and solves with the same MIPS interior-point kernel
// as the AC problem. It doubles as a cross-check: the DC dispatch must
// approximate the AC dispatch on lightly-loaded systems.
package dcopf

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/la"
	"repro/internal/mips"
	"repro/internal/sparse"
)

// Result is a solved DC-OPF.
type Result struct {
	Converged  bool
	Iterations int
	Cost       float64   // $/hr
	Va         la.Vector // radians per bus
	Pg         la.Vector // MW per in-service generator
	Flows      la.Vector // MW per in-service branch (from side)
}

// Problem is a prepared DC-OPF instance.
type Problem struct {
	Case *grid.Case
	bbus *sparse.CSC // nb×nb DC susceptance matrix
	bf   *sparse.CSC // nl×nb branch flow matrix
	pfsh la.Vector   // phase-shift injections on branches (pu)
	gbus []int
	gens []grid.Gen
	ref  int
}

// Prepare builds the DC matrices (Matpower makeBdc): branch susceptance
// b = 1/x scaled by the tap ratio, with phase shifts folded into constant
// injections.
func Prepare(c *grid.Case) *Problem {
	nb := c.NB()
	branches := c.ActiveBranches()
	bbusB := sparse.NewBuilder(nb, nb)
	bfB := sparse.NewBuilder(len(branches), nb)
	pfsh := make(la.Vector, len(branches))
	for l, br := range branches {
		b := 1 / br.X
		if br.Ratio != 0 {
			b /= br.Ratio
		}
		f := c.BusIndex(br.From)
		t := c.BusIndex(br.To)
		bfB.Append(l, f, b)
		bfB.Append(l, t, -b)
		bbusB.Append(f, f, b)
		bbusB.Append(f, t, -b)
		bbusB.Append(t, f, -b)
		bbusB.Append(t, t, b)
		if br.Shift != 0 {
			pfsh[l] = -b * grid.Deg2Rad(br.Shift)
		}
	}
	return &Problem{
		Case: c,
		bbus: bbusB.ToCSC(),
		bf:   bfB.ToCSC(),
		pfsh: pfsh,
		gbus: grid.GenBusIdx(c),
		gens: c.ActiveGens(),
		ref:  c.RefIndex(),
	}
}

// Solve runs the interior-point method on the DC quadratic program.
func Solve(c *grid.Case, opt mips.Options) (*Result, error) {
	return Prepare(c).Solve(opt)
}

// Solve solves the prepared problem.
func (p *Problem) Solve(opt mips.Options) (*Result, error) {
	c := p.Case
	nb := c.NB()
	ng := len(p.gens)
	nl := p.bf.NRows
	nx := nb + ng
	base := c.BaseMVA

	pd := make(la.Vector, nb)
	for i, b := range c.Buses {
		pd[i] = (b.Pd + b.Gs) / base // shunt conductance as constant load
	}
	// Fold branch phase-shift injections into the bus balance.
	shiftInj := make(la.Vector, nb)
	branches := c.ActiveBranches()
	for l, br := range branches {
		if p.pfsh[l] == 0 {
			continue
		}
		shiftInj[c.BusIndex(br.From)] += p.pfsh[l]
		shiftInj[c.BusIndex(br.To)] -= p.pfsh[l]
	}

	xmin := make(la.Vector, nx)
	xmax := make(la.Vector, nx)
	for i := 0; i < nb; i++ {
		xmin[i] = math.Inf(-1)
		xmax[i] = math.Inf(1)
	}
	for g, gen := range p.gens {
		xmin[nb+g] = gen.Pmin / base
		xmax[nb+g] = gen.Pmax / base
	}

	refVa := grid.Deg2Rad(c.Buses[p.ref].Va)

	// Equality Jacobian is constant: [Bbus  −Cg; e_refᵀ 0].
	jgB := sparse.NewBuilder(nb+1, nx)
	jgB.AppendCSC(0, 0, 1, p.bbus)
	for g, bi := range p.gbus {
		jgB.Append(bi, nb+g, -1)
	}
	jgB.Append(nb, p.ref, 1)
	jg := jgB.ToCSC()

	// Rated-branch inequality Jacobian: ±Bf rows.
	var rated []int
	for l, br := range branches {
		if br.RateA > 0 {
			rated = append(rated, l)
		}
	}
	var jh *sparse.CSC
	if len(rated) > 0 {
		jhB := sparse.NewBuilder(2*len(rated), nx)
		for k, l := range rated {
			// Extract row l of Bf via its two entries (from/to bus).
			f := c.BusIndex(branches[l].From)
			t := c.BusIndex(branches[l].To)
			b := p.bf.At(l, f)
			jhB.Append(k, f, b)
			jhB.Append(k, t, -b)
			jhB.Append(len(rated)+k, f, -b)
			jhB.Append(len(rated)+k, t, b)
		}
		jh = jhB.ToCSC()
	}

	prob := &mips.Problem{
		NX: nx,
		F: func(x la.Vector) (float64, la.Vector) {
			f := 0.0
			df := make(la.Vector, nx)
			for g, gen := range p.gens {
				pmw := x[nb+g] * base
				f += gen.Cost.Eval(pmw)
				df[nb+g] = gen.Cost.Deriv(pmw) * base
			}
			return f, df
		},
		G: func(x la.Vector) (la.Vector, *sparse.CSC) {
			g := make(la.Vector, nb+1)
			bth := p.bbus.MulVec(x[:nb])
			for i := 0; i < nb; i++ {
				g[i] = bth[i] + pd[i] + shiftInj[i]
			}
			for gi, bi := range p.gbus {
				g[bi] -= x[nb+gi]
			}
			g[nb] = x[p.ref] - refVa
			return g, jg
		},
		Hess: func(x, lam, mu la.Vector) *sparse.CSC {
			hb := sparse.NewBuilder(nx, nx)
			for g, gen := range p.gens {
				if d2 := gen.Cost.Deriv2() * base * base; d2 != 0 {
					hb.Append(nb+g, nb+g, d2)
				}
			}
			return hb.ToCSC()
		},
		XMin: xmin,
		XMax: xmax,
	}
	if jh != nil {
		prob.H = func(x la.Vector) (la.Vector, *sparse.CSC) {
			h := make(la.Vector, 2*len(rated))
			flows := p.bf.MulVec(x[:nb])
			for k, l := range rated {
				fl := flows[l] + p.pfsh[l]
				lim := branches[l].RateA / base
				h[k] = fl - lim
				h[len(rated)+k] = -fl - lim
			}
			return h, jh
		}
	}

	x0 := make(la.Vector, nx)
	for i := 0; i < nb; i++ {
		x0[i] = refVa
	}
	for g := range p.gens {
		x0[nb+g] = (xmin[nb+g] + xmax[nb+g]) / 2
	}
	mr, err := mips.Solve(prob, x0, nil, opt)
	res := &Result{}
	if mr != nil {
		res.Converged = mr.Converged
		res.Iterations = mr.Iterations
		res.Cost = mr.F
		res.Va = mr.X[:nb].Clone()
		res.Pg = make(la.Vector, ng)
		for g := 0; g < ng; g++ {
			res.Pg[g] = mr.X[nb+g] * base
		}
		flows := p.bf.MulVec(mr.X[:nb])
		res.Flows = make(la.Vector, nl)
		for l := 0; l < nl; l++ {
			res.Flows[l] = (flows[l] + p.pfsh[l]) * base
		}
	}
	if err != nil {
		return res, fmt.Errorf("dcopf: %s: %w", c.Name, err)
	}
	return res, nil
}
