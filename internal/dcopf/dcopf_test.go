package dcopf

import (
	"math"
	"testing"

	"repro/internal/casegen"
	"repro/internal/grid"
	"repro/internal/mips"
	"repro/internal/opf"
)

func TestCase9DC(t *testing.T) {
	r, err := Solve(grid.Case9(), mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("not converged")
	}
	// Matpower rundcopf on case9 gives ≈ 5216.03 $/hr.
	if math.Abs(r.Cost-5216.03)/5216.03 > 0.01 {
		t.Fatalf("cost = %.2f want ≈5216.03", r.Cost)
	}
	// Total generation equals total load exactly (lossless DC).
	var gen float64
	for _, pg := range r.Pg {
		gen += pg
	}
	p, _ := grid.Case9().TotalLoad()
	if math.Abs(gen-p) > 1e-4 {
		t.Fatalf("generation %.4f != load %.4f", gen, p)
	}
}

func TestDCBelowACCost(t *testing.T) {
	// The DC relaxation ignores losses, so its optimal cost is below the
	// AC optimum on the same case.
	for _, c := range []*grid.Case{grid.Case9(), grid.Case14()} {
		dc, err := Solve(c, mips.Options{})
		if err != nil {
			t.Fatalf("%s dc: %v", c.Name, err)
		}
		ac, err := opf.Prepare(c).Solve(nil, opf.Options{})
		if err != nil {
			t.Fatalf("%s ac: %v", c.Name, err)
		}
		if dc.Cost >= ac.Cost {
			t.Errorf("%s: DC cost %.2f not below AC %.2f", c.Name, dc.Cost, ac.Cost)
		}
		// But within ~10% (the relaxation is tight on small systems).
		if math.Abs(dc.Cost-ac.Cost)/ac.Cost > 0.10 {
			t.Errorf("%s: DC %.2f too far from AC %.2f", c.Name, dc.Cost, ac.Cost)
		}
	}
}

func TestFlowLimitsRespected(t *testing.T) {
	c := grid.Case9()
	r, err := Solve(c, mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for l, br := range c.ActiveBranches() {
		if br.RateA > 0 && math.Abs(r.Flows[l]) > br.RateA+1e-4 {
			t.Errorf("branch %d flow %.2f exceeds rate %.1f", l, r.Flows[l], br.RateA)
		}
	}
}

func TestReferenceAngleFixed(t *testing.T) {
	c := grid.Case14()
	r, err := Solve(c, mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Va[c.RefIndex()]) > 1e-8 {
		t.Errorf("ref angle = %v", r.Va[c.RefIndex()])
	}
}

func TestSyntheticSystemsDC(t *testing.T) {
	for _, name := range []string{"case30", "case57"} {
		c, err := casegen.Paper(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Solve(c, mips.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Converged || r.Cost <= 0 {
			t.Fatalf("%s: bad result", name)
		}
	}
}

func TestPhaseShiftInjection(t *testing.T) {
	// A phase-shifting transformer alters DC flows; compare against the
	// same case without shift.
	c := grid.Case9()
	c2 := c.Clone()
	c2.Branches[1].Shift = 3
	r1, err := Solve(c, mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(c2, mips.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Flows[1]-r2.Flows[1]) < 1e-6 {
		t.Error("phase shift had no effect on flow")
	}
}
