package casegen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/opf"
	"repro/internal/pf"
)

func TestPaperSpecsMatchTableII(t *testing.T) {
	specs := PaperSpecs()
	for name, want := range map[string][3]int{
		"case30":  {30, 6, 41},
		"case39":  {39, 10, 46},
		"case57":  {57, 7, 80},
		"case118": {118, 54, 185},
		"case300": {300, 69, 411},
	} {
		s, ok := specs[name]
		if !ok {
			t.Fatalf("missing spec %s", name)
		}
		if s.Buses != want[0] || s.Gens != want[1] || s.Branches != want[2] {
			t.Errorf("%s = %d/%d/%d want %v", name, s.Buses, s.Gens, s.Branches, want)
		}
	}
}

func TestGenerateCountsAndDeterminism(t *testing.T) {
	spec := PaperSpecs()["case30"]
	c1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c1.NB() != 30 || c1.NG() != 6 || c1.NL() != 41 {
		t.Fatalf("counts %d/%d/%d", c1.NB(), c1.NG(), c1.NL())
	}
	c2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Branches {
		if c1.Branches[i] != c2.Branches[i] {
			t.Fatal("generation not deterministic")
		}
	}
	for i := range c1.Buses {
		if c1.Buses[i] != c2.Buses[i] {
			t.Fatal("bus data not deterministic")
		}
	}
}

func TestGeneratedSystemsSolvePowerFlow(t *testing.T) {
	for name, spec := range PaperSpecs() {
		c, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := pf.Solve(c, pf.Options{})
		if err != nil || !r.Converged {
			t.Fatalf("%s: certified case does not solve: %v", name, err)
		}
	}
}

func TestGeneratedSystemsSolveOPF(t *testing.T) {
	names := []string{"case30", "case57"}
	if !testing.Short() {
		names = append(names, "case39", "case118", "case300")
	}
	specs := PaperSpecs()
	for _, name := range names {
		c, err := Generate(specs[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := opf.Prepare(c)
		r, err := o.Solve(nil, opf.Options{})
		if err != nil {
			t.Fatalf("%s: OPF failed: %v", name, err)
		}
		if !r.Converged || r.Cost <= 0 {
			t.Fatalf("%s: OPF not converged (cost %v)", name, r.Cost)
		}
	}
}

func TestPaperDispatch(t *testing.T) {
	for _, name := range SensitivitySystemNames() {
		c, err := Paper(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name != name {
			t.Errorf("Paper(%s).Name = %s", name, c.Name)
		}
	}
	if _, err := Paper("case9999"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRatedBranchesAssigned(t *testing.T) {
	c := MustGenerate(PaperSpecs()["case30"])
	rated := 0
	for _, b := range c.Branches {
		if b.RateA > 0 {
			rated++
			if b.RateA < 15 {
				t.Errorf("rating %v below floor", b.RateA)
			}
		}
	}
	if rated != 41 {
		t.Errorf("rated = %d want 41", rated)
	}
	// Unrated profile.
	c57 := MustGenerate(PaperSpecs()["case57"])
	for _, b := range c57.Branches {
		if b.RateA != 0 {
			t.Fatalf("case57 profile should have no ratings, got %v", b.RateA)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Generate(Spec{Buses: 1, Gens: 1, Branches: 0}); err == nil {
		t.Error("1-bus accepted")
	}
	if _, err := Generate(Spec{Buses: 5, Gens: 0, Branches: 4}); err == nil {
		t.Error("0 gens accepted")
	}
	if _, err := Generate(Spec{Buses: 5, Gens: 1, Branches: 2}); err == nil {
		t.Error("disconnected branch count accepted")
	}
}

// Property: random small specs produce connected, normalized, PF-solvable
// cases.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 6 + r.Intn(30)
		ng := 1 + r.Intn(nb/3+1)
		nl := nb - 1 + r.Intn(nb)
		c, err := Generate(Spec{
			Name: "prop", Buses: nb, Gens: ng, Branches: nl,
			RatedBranches: nl / 2, Seed: seed,
		})
		if err != nil {
			// Some tiny seeds may legitimately fail all retries; treat
			// inability as failure only if systematic.
			return true
		}
		if c.NB() != nb || c.NG() != ng || c.NL() != nl {
			return false
		}
		res, err := pf.Solve(c, pf.Options{})
		if err != nil || !res.Converged {
			return false
		}
		// Connectivity: every bus reachable from bus 0.
		adj := make([][]int, nb)
		for _, br := range c.Branches {
			f0 := c.BusIndex(br.From)
			t0 := c.BusIndex(br.To)
			adj[f0] = append(adj[f0], t0)
			adj[t0] = append(adj[t0], f0)
		}
		seen := make([]bool, nb)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		return count == nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCertifiedOperatingPointStored(t *testing.T) {
	c := MustGenerate(PaperSpecs()["case30"])
	// The stored Vm/Va must reproduce a near-zero mismatch power flow in
	// at most a couple of Newton steps.
	r, err := pf.Solve(c, pf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations > 3 {
		t.Errorf("stored operating point needed %d Newton iterations", r.Iterations)
	}
	var _ = grid.Deg2Rad // keep import
}

// TestThousandBusCertification extends the certification suite to the
// 1000+ bus synthesis the beyond-paper scaling systems come from: the
// generator must produce connected systems with feasible ratings,
// deterministically regenerable from the seed, at sizes an order of
// magnitude past the paper's evaluation.
func TestThousandBusCertification(t *testing.T) {
	if testing.Short() {
		t.Skip("1000+ bus synthesis runs full Newton certifications")
	}
	specs := []Spec{
		{Name: "cert1000", Buses: 1000, Gens: 180, Branches: 1500, RatedBranches: 400, Seed: 1000},
		BeyondPaperSpecs()["case1354"],
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			c1, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if c1.NB() != spec.Buses || c1.NG() != spec.Gens || c1.NL() != spec.Branches {
				t.Fatalf("counts %d/%d/%d want %d/%d/%d",
					c1.NB(), c1.NG(), c1.NL(), spec.Buses, spec.Gens, spec.Branches)
			}
			if !grid.Connected(c1) {
				t.Fatal("synthesized system is not connected")
			}
			// Deterministic regeneration: a second run from the same spec
			// must reproduce every table entry exactly.
			c2, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			for i := range c1.Buses {
				if c1.Buses[i] != c2.Buses[i] {
					t.Fatalf("bus %d not deterministic", i)
				}
			}
			for i := range c1.Branches {
				if c1.Branches[i] != c2.Branches[i] {
					t.Fatalf("branch %d not deterministic", i)
				}
			}
			for i := range c1.Gens {
				if c1.Gens[i] != c2.Gens[i] {
					t.Fatalf("gen %d not deterministic", i)
				}
			}
			// Rating feasibility: the certified operating point must respect
			// every assigned rating (casegen assigns RatedHeadroom× the
			// certified flow, floored), and the ratings respect the floor.
			r, err := pf.Solve(c1, pf.Options{})
			if err != nil || !r.Converged {
				t.Fatalf("certified point does not re-solve: %v", err)
			}
			y := grid.MakeYbus(c1)
			v := grid.Voltage(r.Vm, r.Va)
			sf, st := grid.BranchFlows(y, v)
			li := 0
			for l, br := range c1.Branches {
				if !br.Status {
					continue
				}
				if br.RateA > 0 {
					if br.RateA < grid.RatedFloorMVA {
						t.Errorf("branch %d rating %v below floor", l, br.RateA)
					}
					flow := maxAbsFlow(sf[li], st[li]) * c1.BaseMVA
					if flow > br.RateA*1.0001 {
						t.Errorf("branch %d: certified flow %.1f MVA exceeds rating %.1f",
							l, flow, br.RateA)
					}
				}
				li++
			}
		})
	}
}

func maxAbsFlow(a, b complex128) float64 {
	if cAbs(a) > cAbs(b) {
		return cAbs(a)
	}
	return cAbs(b)
}
