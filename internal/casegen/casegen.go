// Package casegen resolves the paper's evaluation systems by name
// (Paper) and synthesizes IEEE-like AC power systems of arbitrary size
// with a certified-feasible operating point (Generate).
//
// Paper serves embedded data for every system of the paper's Table II
// except case39: case5, case9, case14, case30, case57, case118 and
// case300 live in internal/grid (see the provenance notes in
// internal/grid/cases.go), each with a fully rated branch set so flow
// constraints and N-1 screening behave as at paper scale, plus the
// beyond-paper 1354-bus scaling system (case1354, synthesized to the
// PEGASE element counts and frozen the same way as case300). case39 —
// and any ad-hoc size — is synthesized here: Generate builds deterministic
// systems with the requested bus/generator/branch counts and realistic
// parameter ranges, then runs a Newton power flow to certify that the
// base operating point is solvable — exactly the property the paper's
// ±10 % load-sampling workload depends on. See DESIGN.md §9 and
// ("Substitutions").
package casegen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/batch"
	"repro/internal/grid"
	"repro/internal/pf"
)

// Spec sizes a synthetic system.
type Spec struct {
	Name     string
	Buses    int
	Gens     int
	Branches int // must be ≥ Buses-1 (spanning tree) — meshed beyond that
	// RatedBranches is how many branches get a finite RateA (the IEEE
	// cases differ: case30/case39 have flow limits, case57/118/300 rely
	// on bounds only).
	RatedBranches int
	Seed          int64
	// LoadLevel scales total load relative to total generation capacity
	// (default 0.45).
	LoadLevel float64
}

// PaperSpecs returns the size profiles of the systems used in the paper's
// evaluation (Table II), keyed by their conventional names. The counts
// for λ and µ follow from these sizes exactly as in the paper. The
// case30/case57/case118/case300 profiles are retained for the
// synthetic-generator tests even though Paper serves embedded data
// (grid.Case30 … grid.Case300) for those names; note the embedded
// case118 carries the case file's 186 branches, one more than the
// paper's Table II count reproduced here.
func PaperSpecs() map[string]Spec {
	return map[string]Spec{
		"case30":  {Name: "case30", Buses: 30, Gens: 6, Branches: 41, RatedBranches: 41, Seed: 30},
		"case39":  {Name: "case39", Buses: 39, Gens: 10, Branches: 46, RatedBranches: 46, Seed: 39},
		"case57":  {Name: "case57", Buses: 57, Gens: 7, Branches: 80, RatedBranches: 0, Seed: 57},
		"case118": {Name: "case118", Buses: 118, Gens: 54, Branches: 185, RatedBranches: 0, Seed: 118},
		"case300": {Name: "case300", Buses: 300, Gens: 69, Branches: 411, RatedBranches: 0, Seed: 300},
	}
}

// BeyondPaperSpecs returns the size profiles of the beyond-paper
// scaling systems (the ROADMAP's 1000+ bus frontier; the paper's own
// evaluation stops at 300 buses). case1354 follows the element counts
// of the PEGASE 1354-bus European transmission snapshot — 1354 buses,
// 260 generators, 1991 branches — the conventional next step above
// case300 in the Matpower size ladder.
func BeyondPaperSpecs() map[string]Spec {
	return map[string]Spec{
		"case1354": {Name: "case1354", Buses: 1354, Gens: 260, Branches: 1991, RatedBranches: 0, Seed: 1354},
	}
}

// Generate builds a synthetic case from the spec. The result is
// normalized and certified: a Newton power flow at the embedded operating
// point converges with all voltages in [0.94, 1.06] pu.
func Generate(spec Spec) (*grid.Case, error) {
	if spec.Buses < 2 {
		return nil, fmt.Errorf("casegen: need at least 2 buses, got %d", spec.Buses)
	}
	if spec.Gens < 1 || spec.Gens > spec.Buses {
		return nil, fmt.Errorf("casegen: gens %d out of range for %d buses", spec.Gens, spec.Buses)
	}
	if spec.Branches < spec.Buses-1 {
		return nil, fmt.Errorf("casegen: %d branches cannot connect %d buses", spec.Branches, spec.Buses)
	}
	if spec.LoadLevel == 0 {
		spec.LoadLevel = 0.45
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Retry with progressively lighter loading until the power flow
	// certifies the operating point.
	level := spec.LoadLevel
	for attempt := 0; attempt < 6; attempt++ {
		c := build(spec, rng, level)
		if certify(c) {
			return c, nil
		}
		level *= 0.8
	}
	return nil, fmt.Errorf("casegen: could not produce a feasible %d-bus system (seed %d)", spec.Buses, spec.Seed)
}

// MustGenerate is Generate that panics on failure; for the fixed paper
// specs, generation is deterministic and known-good.
func MustGenerate(spec Spec) *grid.Case {
	c, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Systems resolves a list of paper system names (see Paper) concurrently
// on the batch worker pool, in input order. Each synthetic case is built
// from its own fixed seed, so the result is identical to resolving the
// names sequentially. It backs core.LoadSystems, the fan-out used when
// an experiment sweeps all evaluation systems.
func Systems(names []string, workers int) ([]*grid.Case, error) {
	return batch.Map(len(names), batch.Options{Workers: workers}, func(t *batch.Task) (*grid.Case, error) {
		return Paper(names[t.Index])
	})
}

// Paper returns one of the paper's test systems by name: embedded data
// for every system except case39 (synthesized from its Table II
// profile). EmbeddedNames lists the embedded set.
func Paper(name string) (*grid.Case, error) {
	switch name {
	case "case5":
		return grid.Case5(), nil
	case "case9":
		return grid.Case9(), nil
	case "case14":
		return grid.Case14(), nil
	case "case30":
		return grid.Case30(), nil
	case "case57":
		return grid.Case57(), nil
	case "case118":
		return grid.Case118(), nil
	case "case300":
		return grid.Case300(), nil
	case "case1354":
		return grid.Case1354(), nil
	}
	spec, ok := PaperSpecs()[name]
	if !ok {
		spec, ok = BeyondPaperSpecs()[name]
	}
	if !ok {
		return nil, fmt.Errorf("casegen: unknown paper system %q", name)
	}
	return Generate(spec)
}

// EmbeddedNames lists, in size order, the systems Paper serves from
// embedded data rather than synthesis. The docs coverage check and the
// paper-scale benchmark harness iterate this set. case1354 is the
// beyond-paper scaling member (the paper's own evaluation stops at
// case300).
func EmbeddedNames() []string {
	return []string{"case5", "case9", "case14", "case30", "case57", "case118", "case300", "case1354"}
}

// PaperSystemNames lists the five evaluation systems of Figures 4-8
// in size order.
func PaperSystemNames() []string {
	return []string{"case14", "case30", "case57", "case118", "case300"}
}

// SensitivitySystemNames lists the eight systems of Table I in size order.
func SensitivitySystemNames() []string {
	return []string{"case5", "case9", "case14", "case30", "case39", "case57", "case118", "case300"}
}

func build(spec Spec, rng *rand.Rand, loadLevel float64) *grid.Case {
	nb := spec.Buses
	c := &grid.Case{Name: spec.Name, BaseMVA: 100}

	// Buses: IDs 1..nb. Types are assigned after generator placement.
	for i := 0; i < nb; i++ {
		c.Buses = append(c.Buses, grid.Bus{
			ID: i + 1, Type: grid.PQ, Vm: 1, BaseKV: 138,
			Vmax: 1.06, Vmin: 0.94,
		})
	}

	// Topology: preferential-attachment spanning tree (short average
	// path, hub buses — transmission-grid-like), then chords between
	// random distinct pairs.
	type edge struct{ f, t int }
	edges := make([]edge, 0, spec.Branches)
	have := map[[2]int]bool{}
	addEdge := func(f, t int) bool {
		if f == t {
			return false
		}
		if f > t {
			f, t = t, f
		}
		k := [2]int{f, t}
		if have[k] {
			return false
		}
		have[k] = true
		edges = append(edges, edge{f, t})
		return true
	}
	degree := make([]int, nb)
	for i := 1; i < nb; i++ {
		// Attach to an existing bus, weighted by degree+1.
		total := 0
		for j := 0; j < i; j++ {
			total += degree[j] + 1
		}
		pick := rng.Intn(total)
		at := 0
		for j := 0; j < i; j++ {
			pick -= degree[j] + 1
			if pick < 0 {
				at = j
				break
			}
		}
		addEdge(at, i)
		degree[at]++
		degree[i]++
	}
	for len(edges) < spec.Branches {
		f := rng.Intn(nb)
		t := rng.Intn(nb)
		if addEdge(f, t) {
			degree[f]++
			degree[t]++
		}
	}

	// Larger systems need proportionally stronger corridors or voltages
	// sag below limits; scale impedances with size like real grids where
	// bulk corridors are paralleled.
	xscale := math.Min(1, 18/float64(nb))
	for _, e := range edges {
		x := (0.02 + 0.18*rng.Float64()) * xscale
		br := grid.Branch{
			From: e.f + 1, To: e.t + 1,
			R: x / (2.5 + 2.5*rng.Float64()), X: x,
			B:      0.04 * rng.Float64() * xscale,
			Status: true,
		}
		if rng.Float64() < 0.08 { // a few transformers
			br.Ratio = 0.95 + 0.1*rng.Float64()
			br.B = 0
		}
		c.Branches = append(c.Branches, br)
	}

	// Generators at distinct buses; bus of the first becomes the slack.
	genBuses := rng.Perm(nb)[:spec.Gens]
	totalCap := 0.0
	caps := make([]float64, spec.Gens)
	for g := range caps {
		caps[g] = 60 + 340*rng.Float64() // MW
		totalCap += caps[g]
	}
	for g, bi := range genBuses {
		if g == 0 {
			c.Buses[bi].Type = grid.Ref
		} else {
			c.Buses[bi].Type = grid.PV
		}
		c2 := 0.005 + 0.1*rng.Float64()
		c1 := 10 + 30*rng.Float64()
		qcap := math.Max(0.8*caps[g], 80)
		c.Gens = append(c.Gens, grid.Gen{
			Bus: bi + 1, Vg: 1.01,
			Pmax: caps[g], Pmin: 0,
			Qmax: qcap, Qmin: -qcap,
			Status: true,
			Cost:   grid.PolyCost{C2: c2, C1: c1, C0: 20 + 80*rng.Float64()},
		})
	}

	// Loads at ~70% of buses, log-uniform-ish sizes, scaled to the target
	// level of total capacity; power factor 0.9-0.98.
	totalLoad := loadLevel * totalCap
	weights := make([]float64, nb)
	wsum := 0.0
	for i := 0; i < nb; i++ {
		if rng.Float64() < 0.7 {
			weights[i] = math.Exp(rng.NormFloat64() * 0.7)
			wsum += weights[i]
		}
	}
	if wsum == 0 { // degenerate tiny systems: load the last bus
		weights[nb-1], wsum = 1, 1
	}
	for i := 0; i < nb; i++ {
		if weights[i] == 0 {
			continue
		}
		pd := totalLoad * weights[i] / wsum
		pfac := 0.9 + 0.08*rng.Float64()
		c.Buses[i].Pd = pd
		c.Buses[i].Qd = pd * math.Tan(math.Acos(pfac))
	}

	// Dispatch generators proportionally to capacity to cover the load;
	// the slack absorbs losses.
	for g := range c.Gens {
		c.Gens[g].Pg = totalLoad * caps[g] / totalCap
	}

	// Branch ratings: assigned after the certifying power flow (see
	// certify) per the fleet-wide rated-branch convention
	// (grid.RatedHeadroom × base-case flow) so the base point is
	// feasible but the limits bind under load growth.
	if spec.RatedBranches > 0 {
		// Temporary marker; real values set in certify.
		for l := 0; l < len(c.Branches) && l < spec.RatedBranches; l++ {
			c.Branches[l].RateA = -1
		}
	}
	if err := c.Normalize(); err != nil {
		panic(fmt.Sprintf("casegen: internal: %v", err))
	}
	return c
}

// certify runs a Newton power flow; on success it finalizes branch
// ratings from the solved flows and returns true.
func certify(c *grid.Case) bool {
	// Clear rating markers for the PF (RateA is metadata only for PF).
	marked := make([]bool, len(c.Branches))
	for l := range c.Branches {
		if c.Branches[l].RateA < 0 {
			marked[l] = true
			c.Branches[l].RateA = 0
		}
	}
	r, err := pf.Solve(c, pf.Options{})
	if err != nil || !r.Converged {
		return false
	}
	for _, vm := range r.Vm {
		if vm < 0.94 || vm > 1.06 {
			return false
		}
	}
	// Note: no reactive-headroom check here. Holding many PV buses at a
	// common setpoint circulates VArs between nearby machines, which the
	// OPF (the actual workload) resolves by optimizing the voltage
	// profile; requiring PF-level Q feasibility rejects perfectly good
	// systems. OPF solvability is covered by the package tests.

	// Finalize ratings per the shared convention (grid.RateBranches'
	// constants); only the spec-marked subset gets limits.
	y := grid.MakeYbus(c)
	v := grid.Voltage(r.Vm, r.Va)
	sf, st := grid.BranchFlows(y, v)
	li := 0
	for l := range c.Branches {
		if !c.Branches[l].Status {
			continue
		}
		if marked[l] {
			flow := math.Max(cAbs(sf[li]), cAbs(st[li])) * c.BaseMVA
			c.Branches[l].RateA = math.Max(grid.RatedHeadroom*flow, grid.RatedFloorMVA)
		}
		li++
	}
	// Anchor the case's stored operating point to the certified solution.
	for i := range c.Buses {
		c.Buses[i].Vm = r.Vm[i]
		c.Buses[i].Va = grid.Rad2Deg(r.Va[i])
	}
	for gi := range c.Gens {
		c.Gens[gi].Pg = r.Pg[gi] * c.BaseMVA
		c.Gens[gi].Qg = r.Qg[gi] * c.BaseMVA
	}
	return true
}

func cAbs(x complex128) float64 {
	return math.Hypot(real(x), imag(x))
}
