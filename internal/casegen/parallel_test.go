package casegen

import (
	"testing"
)

// TestSystemsMatchesSequential: the pooled name resolver must return
// exactly what per-name Paper returns, in input order.
func TestSystemsMatchesSequential(t *testing.T) {
	names := []string{"case30", "case9", "case39"}
	par, err := Systems(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		seq, err := Paper(name)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Name != seq.Name || len(par[i].Buses) != len(seq.Buses) {
			t.Fatalf("%s: parallel case differs structurally", name)
		}
		for b := range seq.Buses {
			if seq.Buses[b].Pd != par[i].Buses[b].Pd || seq.Buses[b].Vm != par[i].Buses[b].Vm {
				t.Fatalf("%s bus %d: parallel differs from sequential", name, b)
			}
		}
	}
}

// TestSystemsResolvesNames: name resolution preserves order and an
// unknown name surfaces as an aggregated error.
func TestSystemsResolvesNames(t *testing.T) {
	cases, err := Systems([]string{"case9", "case5", "case14"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{9, 5, 14} {
		if len(cases[i].Buses) != want {
			t.Fatalf("slot %d: %d buses, want %d", i, len(cases[i].Buses), want)
		}
	}
	if _, err := Systems([]string{"case9", "nope"}, 2); err == nil {
		t.Fatal("unknown system name not reported")
	}
}
